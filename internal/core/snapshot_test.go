package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/obs/flight"
)

// TestSnapshotCoversSessionFields walks Session's fields by reflection
// and demands each one is either carried by SessionSnapshot or listed
// here with a reason it deliberately is not. Adding a Session field
// without deciding its handoff fate fails this test, so federation
// handoff cannot silently lose new state.
func TestSnapshotCoversSessionFields(t *testing.T) {
	carried := map[string]string{ // Session field -> SessionSnapshot field
		"id":               "ID",
		"expect":           "Expect",
		"specText":         "SpecText",
		"checker":          "Conformance",
		"flight":           "Flight",
		"periodicInterval": "PeriodicInterval",
		"stepSlack":        "StepSlack",
		"maxDetections":    "MaxDetections",
		"matchAny":         "MatchAny",
		"matchASG":         "MatchASG",
		"state":            "State",
		"endedAt":          "EndedAt",
		"bound":            "Bound",
		"instances":        "Instances",
		"completed":        "Completed",
		"detections":       "Detections",
		"seen":             "Seen",
		"identified":       "Identified",
		"progress":         "Progress",
		"total":            "Total",
		"lastEntry":        "LastEntry",
		"flightGap":        "FlightGap",
		"degradedUntil":    "DegradedUntil",
	}
	excluded := map[string]string{ // Session field -> why handoff may drop it
		"mgr":         "rewired to the adopting manager by RestoreSession",
		"spec":        "re-parsed from SpecText against the adopting registry",
		"remCtl":      "not serializable; re-attached via WithRemediationController",
		"pending":     "transient backlog counter; work does not survive the owner",
		"mu":          "lock",
		"stepCancel":  "one-off step timers re-arm on the next step event",
		"perioCancel": "periodic timers re-armed by RestoreSession",
	}
	st := reflect.TypeOf(Session{})
	snapT := reflect.TypeOf(SessionSnapshot{})
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if snapField, ok := carried[name]; ok {
			if _, ok := snapT.FieldByName(snapField); !ok {
				t.Errorf("Session.%s claims to be carried by SessionSnapshot.%s, which does not exist", name, snapField)
			}
			continue
		}
		if _, ok := excluded[name]; ok {
			continue
		}
		t.Errorf("Session.%s is neither carried by SessionSnapshot nor excluded with a reason; handoff would silently lose it", name)
	}
	for name := range carried {
		if _, ok := st.FieldByName(name); !ok {
			t.Errorf("carried list names Session.%s, which no longer exists", name)
		}
	}
	for name := range excluded {
		if _, ok := st.FieldByName(name); !ok {
			t.Errorf("excluded list names Session.%s, which no longer exists", name)
		}
	}
}

// TestSnapshotRoundTrip runs a real faulted upgrade, exports the
// session, ships the snapshot through JSON (the REST handoff path),
// restores it onto a second manager and exports again: apart from the
// appended federation.handoff evidence entry and the export timestamp,
// the two snapshots must be byte-identical — the proof that no field
// decays in transit.
func TestSnapshotRoundTrip(t *testing.T) {
	r := newMultiRig(t, func(c *ManagerConfig) { c.FlightCapacity = 2048 })
	alpha := r.addOp(t, "alpha", 2)
	inj := faultinject.NewInjector(r.cloud, alpha.cluster, 7)
	defer inj.Heal()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = inj.Inject(r.ctx, faultinject.KindKeyPairChanged, 10*time.Second, alpha.spec.NewLCName, alpha.newAMI)
	}()
	r.runAll(t, []*op{alpha})
	<-done
	r.mgr.Drain(r.ctx, 2*time.Minute)

	snap1, err := r.mgr.ExportSession("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap1.Detections) == 0 || len(snap1.Conformance) == 0 || len(snap1.Flight.Entries) == 0 {
		t.Fatalf("export carries too little state to prove anything: %d detections, %d instances, %d entries",
			len(snap1.Detections), len(snap1.Conformance), len(snap1.Flight.Entries))
	}

	raw, err := json.Marshal(snap1)
	if err != nil {
		t.Fatal(err)
	}
	var wire SessionSnapshot
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}

	b, err := NewManager(ManagerConfig{Cloud: r.cloud, Bus: r.bus, FlightCapacity: 2048})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.timers.StopAll)
	if _, err := b.RestoreSession(&wire); err != nil {
		t.Fatal(err)
	}
	snap2, err := b.ExportSession("alpha")
	if err != nil {
		t.Fatal(err)
	}
	n := len(snap2.Flight.Entries)
	if n == 0 || snap2.Flight.Entries[n-1].Kind != flight.KindHandoff {
		t.Fatalf("restored ring does not end with a federation.handoff entry")
	}
	snap2.Flight.Entries = snap2.Flight.Entries[:n-1]
	snap2.TakenAt = snap1.TakenAt

	j1, _ := json.Marshal(snap1)
	j2, _ := json.Marshal(snap2)
	if !bytes.Equal(j1, j2) {
		t.Errorf("snapshot decayed across export -> JSON -> restore -> export:\n first: %s\nsecond: %s", j1, j2)
	}
}
