package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"poddiagnosis/internal/chaos"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
)

// newChaosRig is newMultiRig with a chaos profile tapping the log stream
// (and, when the profile attacks the API plane, storming the monitoring
// plane's cloud reads). A moderate scale and a widened reorder window keep
// wall-clock scheduler noise out of the watermark.
func newChaosRig(t *testing.T, p chaos.Profile) *multiRig {
	t.Helper()
	clk := clock.NewScaled(600, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.TickInterval = time.Second
	cloudOpts := []simaws.Option{simaws.WithSeed(33), simaws.WithBus(bus)}
	if inj := p.FaultInjector(clk); inj != nil {
		cloudOpts = append(cloudOpts, simaws.WithFaultInjector(inj))
	}
	cloud := simaws.New(clk, profile, cloudOpts...)
	cloud.Start()
	mgr, err := NewManager(ManagerConfig{
		Cloud:         cloud,
		Bus:           bus,
		LogTap:        p.LogTap(clk),
		ReorderWindow: 15 * time.Second,
		API: consistentapi.Config{
			MaxAttempts:    3,
			InitialBackoff: 500 * time.Millisecond,
			MaxBackoff:     4 * time.Second,
			CallTimeout:    30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	t.Cleanup(func() { mgr.Stop(); cloud.Stop(); bus.Close() })
	return &multiRig{clk: clk, bus: bus, cloud: cloud, mgr: mgr, ctx: context.Background()}
}

// TestChaosSoakFourConcurrentUpgrades is the -race soak: four clean
// rolling upgrades monitored through one Manager while the chaos harness
// drops, duplicates and reorders their log streams. The invariant is the
// CI chaos gate: chaos may cost detections their confidence (Degraded),
// but it must never manufacture a confident wrong diagnosis, and the
// Manager must shut down cleanly with nothing stranded in the reorder
// buffer.
func TestChaosSoakFourConcurrentUpgrades(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is slow")
	}
	p, _ := chaos.ByName("lossy")
	r := newChaosRig(t, p)
	const n = 4
	ops := make([]*op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, r.addOp(t, fmt.Sprintf("chaos%d", i), 2))
	}
	r.runAll(t, ops)

	for _, o := range ops {
		for _, d := range o.sess.Detections() {
			if d.InstanceID != o.taskID {
				t.Errorf("%s: detection references foreign instance %q", o.sess.ID(), d.InstanceID)
			}
			// A clean run under a lossy pipeline may produce degraded,
			// discounted detections (missing step events look anomalous) —
			// but a full-confidence identified root cause would be a lie.
			if d.Diagnosis != nil && d.Diagnosis.Conclusion == diagnosis.ConclusionIdentified && !d.Degraded {
				t.Errorf("%s: non-degraded identified diagnosis on a clean chaotic run: %+v",
					o.sess.ID(), d.Diagnosis)
			}
			if d.Degraded && d.Confidence >= 1 {
				t.Errorf("%s: degraded detection with undiscounted confidence %v", o.sess.ID(), d.Confidence)
			}
		}
	}
	if st := r.mgr.ReorderStats(); st.Pending != 0 {
		t.Errorf("reorder buffer stranded %d events after drain", st.Pending)
	}
}

// TestReorderingAloneCausesNoSpuriousDetections runs two clean upgrades
// through a reorder-only tap (no drops, no duplicates beyond the buffer's
// dedup reach): the reorder buffer must repair the stream inside its
// window, so sessions complete conformance with zero gaps, zero degraded
// intervals, and zero detections.
func TestReorderingAloneCausesNoSpuriousDetections(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos rig is slow")
	}
	r := newChaosRig(t, chaos.Profile{
		Name:        "reorder-only",
		ReorderProb: 0.5,
		MaxDelay:    2 * time.Second, // well inside the 15s reorder window
		DupProb:     0.05,            // duplicates are dedup'd, never gaps
	})
	ops := []*op{r.addOp(t, "ro0", 2), r.addOp(t, "ro1", 2)}
	r.runAll(t, ops)

	for _, o := range ops {
		if !o.sess.Checker().Completed(o.taskID) {
			t.Errorf("%s: conformance did not complete under reordering", o.sess.ID())
		}
		if o.sess.Degraded() {
			t.Errorf("%s: session degraded by reordering alone", o.sess.ID())
		}
		for _, d := range o.sess.Detections() {
			if d.Diagnosis == nil || d.Diagnosis.Conclusion == diagnosis.ConclusionIdentified {
				t.Errorf("%s: spurious detection from reordering alone: %+v", o.sess.ID(), d)
			}
			if d.Degraded {
				t.Errorf("%s: degraded detection from reordering alone: %+v", o.sess.ID(), d)
			}
		}
	}
	if st := r.mgr.ReorderStats(); st.Gaps != 0 {
		t.Errorf("reorder stats = %+v, want zero gaps", st)
	}
}

// TestDegradedModeOnInducedGap checks the degraded-mode plumbing directly:
// a sequence gap on the pipeline marks active sessions degraded for the
// hold window, and the flag decays once the hold elapses.
func TestDegradedModeOnInducedGap(t *testing.T) {
	r := newMultiRig(t, func(c *ManagerConfig) { c.DegradedHold = 30 * time.Second })
	s, err := r.mgr.Watch(Expectation{ASGName: "dg--asg", ClusterSize: 2}, BindInstance("dg-task"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("fresh session already degraded")
	}
	now := r.clk.Now()
	ev := logging.Event{
		Timestamp: now,
		Source:    "asgard.log",
		Type:      logging.TypeOperation,
		Fields:    map[string]string{"taskid": "dg-task"},
		Message:   logging.FormatOperationLine(now, "dg-task", "Starting rolling upgrade of group dg--asg to image ami-x"),
	}
	// Publish seq 1, then skip ahead: the bus stamps 1, 2, 3...; a copy
	// with a forged higher Seq models two lost events in shipping.
	r.bus.Publish(ev)
	forged := ev.Clone()
	forged.Seq = 4
	r.bus.Publish(forged)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && r.mgr.ReorderStats().Gaps == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	// The gap is declared by the clock-driven watermark (3s simulated).
	if r.mgr.ReorderStats().Gaps == 0 {
		t.Fatal("forged sequence jump declared no gap")
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !s.Degraded() {
		time.Sleep(2 * time.Millisecond)
	}
	if !s.Degraded() {
		t.Fatal("session not degraded after pipeline gap")
	}
	// The hold decays in simulated time (30s at scale 1200 = 25ms wall).
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && s.Degraded() {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Degraded() {
		t.Error("degraded flag never decayed")
	}
}
