package core

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/clock"

	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
)

// opEvent fabricates an annotated operation event as the upgrader would
// emit it.
func opEvent(clkNow time.Time, taskID, body string) logging.Event {
	return logging.Event{
		Timestamp: clkNow,
		Source:    "asgard.log",
		Type:      logging.TypeOperation,
		Fields:    map[string]string{"taskid": taskID},
		Message:   logging.FormatOperationLine(clkNow, taskID, body),
	}
}

func TestProgressTrackingFromReadyLines(t *testing.T) {
	r := newRig(t, 2, nil)
	r.engine.Start()
	defer r.engine.Stop()
	now := r.cloud.Clock().Now()
	r.bus.Publish(opEvent(now, "task-p", "Starting rolling upgrade of group pm--asg to image ami-x"))
	r.bus.Publish(opEvent(now, "task-p", "Sorted 5 instances for replacement"))
	r.bus.Publish(opEvent(now, "task-p", "Instance pm on i-1 is ready for use. 3 of 5 instance relaunches done."))
	sess := r.engine.Session()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if sess.progressOf("task-p") == 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := sess.progressOf("task-p"); got != 3 {
		t.Fatalf("progress = %d, want 3", got)
	}
	sess.mu.Lock()
	total := sess.total["task-p"]
	sess.mu.Unlock()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
}

func TestProcessEndCancelsTimers(t *testing.T) {
	r := newRig(t, 2, nil)
	r.engine.Start()
	defer r.engine.Stop()
	now := r.cloud.Clock().Now()
	r.bus.Publish(opEvent(now, "task-t", "Starting rolling upgrade of group pm--asg to image ami-x"))
	r.bus.Publish(opEvent(now, "task-t", "Waiting for group pm--asg to start a new instance"))
	// Wait for the periodic + step timers to be registered.
	sess := r.engine.Session()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		sess.mu.Lock()
		n := len(sess.perioCancel) + len(sess.stepCancel)
		sess.mu.Unlock()
		if n >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	r.bus.Publish(opEvent(now, "task-t", "Rolling upgrade task completed"))
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		sess.mu.Lock()
		n := len(sess.perioCancel) + len(sess.stepCancel)
		sess.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timers not cancelled at process end")
}

func TestDetectionCapBoundsRecording(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.MaxDetections = 2 })
	r.engine.Start()
	defer r.engine.Stop()
	// Flood with distinct conformance errors (distinct steps via fit
	// progress is hard; use error lines with distinct dedup keys by
	// changing step context through valid progress).
	now := r.cloud.Clock().Now()
	for i := 0; i < 10; i++ {
		r.bus.Publish(opEvent(now, "task-c", "ERROR: boom number "+string(rune('a'+i))))
	}
	r.engine.Drain(context.Background(), 2*time.Minute)
	if got := len(r.engine.Detections()); got > 2 {
		t.Fatalf("detections = %d, cap 2", got)
	}
}

func TestReDiagnosisAfterInconclusive(t *testing.T) {
	r := newRig(t, 2, nil)
	sess := r.engine.Session()
	// First diagnosis for a key concludes nothing: the key may retry.
	key := "assert|t|x|step1"
	if !sess.shouldDiagnose(key) {
		t.Fatal("first attempt blocked")
	}
	sess.record(Detection{InstanceID: "t", TriggerID: "x", StepID: "step1",
		Diagnosis: &diagnosis.Diagnosis{Conclusion: diagnosis.ConclusionNone}}, key)
	if !sess.shouldDiagnose(key) {
		t.Fatal("retry after inconclusive blocked")
	}
	// Once identified, the key is settled.
	sess.record(Detection{InstanceID: "t", TriggerID: "x", StepID: "step1",
		Diagnosis: &diagnosis.Diagnosis{Conclusion: diagnosis.ConclusionIdentified}}, key)
	if sess.shouldDiagnose(key) {
		t.Fatal("retry after identification allowed")
	}
	// Only the originating key settles: a conformance key sharing the
	// same parts is unaffected (the old code blindly settled both).
	if !sess.shouldDiagnose("conf|t|x|step1") {
		t.Fatal("conformance key settled by assertion identification")
	}
	// Unrelated keys unaffected.
	if !sess.shouldDiagnose("assert|t|y|step1") {
		t.Fatal("unrelated key blocked")
	}
}

func TestConformanceEventsPublished(t *testing.T) {
	r := newRig(t, 2, nil)
	sink := logging.NewMemorySink()
	sub := r.bus.Subscribe(1024, logging.TypeFilter(logging.TypeConformance))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			sink.Write(e)
		}
	}()
	r.engine.Start()
	now := r.cloud.Clock().Now()
	r.bus.Publish(opEvent(now, "task-v", "Starting rolling upgrade of group pm--asg to image ami-x"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && sink.Len() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	r.engine.Stop()
	sub.Cancel()
	<-done
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("no conformance events published")
	}
	ev := events[0]
	if !ev.HasTag("conformance:fit") {
		t.Errorf("tags = %v", ev.Tags)
	}
	if ev.Field("verdict") != "fit" || ev.Field("taskid") != "task-v" {
		t.Errorf("fields = %v", ev.Fields)
	}
}

func TestStepBindingsShape(t *testing.T) {
	r := newRig(t, 4, nil)
	model := process.RollingUpgradeModel()
	ev := logging.Event{Fields: map[string]string{"instanceid": "i-123"}}
	cases := []struct {
		node  string
		wantN int
	}{
		{process.NodeStartTask, 0},
		{process.NodeUpdateLC, 1},
		{process.NodeSortInst, 0},
		{process.NodeDeregister, 1},
		{process.NodeTerminateOld, 0},
		{process.NodeWaitASG, 0},
		{process.NodeNewReady, 6}, // version count + instance version + 4 config
		{process.NodeCompleted, 6},
	}
	for _, tc := range cases {
		n := model.Node(tc.node)
		got := r.engine.Session().stepBindings("t", n, ev)
		if len(got) != tc.wantN {
			t.Errorf("%s bindings = %d, want %d", tc.node, len(got), tc.wantN)
		}
	}
	// Without an instance id, the low-level double check is skipped.
	bare := r.engine.Session().stepBindings("t", model.Node(process.NodeNewReady), logging.Event{})
	if len(bare) != 5 {
		t.Errorf("bare step7 bindings = %d, want 5", len(bare))
	}
}

func TestEngineStopIsCleanWithPendingWork(t *testing.T) {
	r := newRig(t, 2, nil)
	r.engine.Start()
	now := r.cloud.Clock().Now()
	// Queue work, then stop immediately: must not deadlock or panic.
	for i := 0; i < 20; i++ {
		r.bus.Publish(opEvent(now, "task-s", "Starting rolling upgrade of group pm--asg to image ami-x"))
	}
	r.engine.Stop()
}

func TestExpectationMinInServiceExplicit(t *testing.T) {
	bus := logging.NewBus()
	defer bus.Close()
	cloud := simaws.New(clock.NewScaled(100, time.Unix(0, 0)), simaws.FastProfile())
	eng, err := NewEngine(Config{
		Cloud: cloud, Bus: bus,
		Expect: Expectation{ASGName: "g", ClusterSize: 10, MinInService: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.cfg.Expect.MinInService != 7 {
		t.Fatalf("MinInService overridden: %d", eng.cfg.Expect.MinInService)
	}
}

func TestCustomAssertionSpec(t *testing.T) {
	// A spec with only the completion capacity check: step7 evaluations
	// disappear, step8 keeps exactly one binding.
	custom := "on step8 assert asg-instance-count want={n}\n"
	r := newRig(t, 2, func(c *Config) { c.AssertionSpec = custom })
	model := process.RollingUpgradeModel()
	if got := r.engine.Session().stepBindings("t", model.Node(process.NodeNewReady), logging.Event{}); len(got) != 0 {
		t.Errorf("step7 bindings = %d, want 0", len(got))
	}
	got := r.engine.Session().stepBindings("t", model.Node(process.NodeCompleted), logging.Event{})
	if len(got) != 1 || got[0].checkID != "asg-instance-count" {
		t.Fatalf("step8 bindings = %+v", got)
	}
	if got[0].params["want"] != "2" {
		t.Errorf("want = %q", got[0].params["want"])
	}
}

func TestInvalidAssertionSpecRejected(t *testing.T) {
	bus := logging.NewBus()
	defer bus.Close()
	cloud := simaws.New(clock.NewScaled(100, time.Unix(0, 0)), simaws.FastProfile())
	_, err := NewEngine(Config{
		Cloud: cloud, Bus: bus,
		Expect:        Expectation{ASGName: "g", ClusterSize: 2},
		AssertionSpec: "on step1 assert no-such-check",
	})
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
}
