package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/remediate"
)

// SessionState is the lifecycle phase of a monitoring session.
type SessionState string

const (
	// SessionActive means the session is routing events and evaluating.
	SessionActive SessionState = "active"
	// SessionEnded means the operation finished (or was ended explicitly);
	// the session retains its detections until the manager GCs it after
	// the retention window.
	SessionEnded SessionState = "ended"
)

// Session monitors one sporadic operation under a Manager: it holds the
// operation's expectation, its resolved assertion specification, a private
// conformance context, progress/timer/dedup state and the recorded
// detections. All event handling runs on the manager's pipeline goroutine;
// assertion evaluations and diagnoses are handed to the manager's shared
// worker pool.
type Session struct {
	id  string
	mgr *Manager

	expect Expectation
	spec   *assertspec.Spec
	// specText is the spec override Watch parsed spec from ("" when the
	// session uses the manager default); carried by snapshots so the
	// adopting manager can re-parse the same spec. Immutable after Watch.
	specText string
	checker  *conformance.Checker
	// flight is the operation's evidence ring; nil (a no-op) when the
	// manager's recorder is disabled. Immutable after Watch.
	flight *flight.Op

	periodicInterval time.Duration
	stepSlack        float64
	maxDetections    int
	matchAny         bool
	matchASG         bool
	// remCtl steers the operation itself during remediation (retry step,
	// abort); nil when the harness attached none. Immutable after Watch.
	remCtl remediate.OperationController

	pending atomic.Int64 // queued + in-flight work items for this session

	mu          sync.Mutex
	state       SessionState
	endedAt     time.Time
	bound       map[string]bool // explicitly bound process instance ids
	instances   map[string]bool // every instance routed to this session
	completed   map[string]bool // instances whose process reached its end
	detections  []Detection
	seen        map[string]int  // diagnosis attempts per dedup key
	identified  map[string]bool // keys whose diagnosis already identified a cause
	progress    map[string]int  // instance -> relaunches done
	total       map[string]int  // instance -> total relaunches
	stepCancel  map[string]func()
	perioCancel map[string]func()
	// lastEntry maps instance id -> latest log-event evidence entry, the
	// causal anchor for assertions and detections triggered by that line.
	lastEntry map[string]uint64
	// flightGap is the latest stream-gap evidence entry; degraded
	// detections cite it as a contributing parent.
	flightGap uint64
	// degradedUntil marks the end of the degraded hold: after a sequence
	// gap on the shipping fabric, the session cannot trust the absence of
	// a log line until this (simulated) time passes. Conformance switches
	// to lossy mode and detections carry a confidence discount.
	degradedUntil time.Time
}

// ID returns the session's operation id.
func (s *Session) ID() string { return s.id }

// Expect returns the session's (normalized) expectation.
func (s *Session) Expect() Expectation { return s.expect }

// Checker returns the session's private conformance checker, which replays
// only this operation's log lines.
func (s *Session) Checker() *conformance.Checker { return s.checker }

// State returns the session's lifecycle phase.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Pending reports this session's queued plus in-flight work items.
func (s *Session) Pending() int { return int(s.pending.Load()) }

// Instances returns the process instance ids routed to this session.
func (s *Session) Instances() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.instances))
	for id := range s.instances {
		out = append(out, id)
	}
	return out
}

// Detections returns a copy of the session's recorded detections.
func (s *Session) Detections() []Detection {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Detection, len(s.detections))
	copy(out, s.detections)
	return out
}

// End transitions the session to the ended state: its timers are cancelled
// and further routed events are ignored. Recorded detections stay readable
// until the manager garbage-collects the session after the retention
// window. End is idempotent.
func (s *Session) End() {
	s.mu.Lock()
	if s.state == SessionEnded {
		s.mu.Unlock()
		return
	}
	s.state = SessionEnded
	s.endedAt = s.mgr.clk.Now()
	cancels := make([]func(), 0, len(s.stepCancel)+len(s.perioCancel))
	for id, c := range s.stepCancel {
		cancels = append(cancels, c)
		delete(s.stepCancel, id)
	}
	for id, c := range s.perioCancel {
		cancels = append(cancels, c)
		delete(s.perioCancel, id)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	s.mgr.sessionEnded()
}

// noteGap enters (or extends) degraded mode after a declared sequence gap.
func (s *Session) noteGap(now time.Time) {
	until := now.Add(s.mgr.cfg.DegradedHold)
	s.mu.Lock()
	if until.After(s.degradedUntil) {
		s.degradedUntil = until
	}
	s.mu.Unlock()
}

// setLastGap remembers the newest stream-gap evidence entry.
func (s *Session) setLastGap(id uint64) {
	s.mu.Lock()
	s.flightGap = id
	s.mu.Unlock()
}

// lastEntryOf returns the instance's latest log-event evidence entry.
func (s *Session) lastEntryOf(instanceID string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEntry[instanceID]
}

// Timeline snapshots the session's evidence chain, optionally filtered
// by entry kind. Empty (with no entries, never nil) when the manager's
// flight recorder is disabled.
func (s *Session) Timeline(kinds ...flight.Kind) flight.Timeline {
	return s.mgr.flight.Timeline(s.id, kinds...)
}

// degradedNow reports whether the session is inside a degraded hold.
func (s *Session) degradedNow() bool {
	now := s.mgr.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return now.Before(s.degradedUntil)
}

// Degraded reports whether the session currently distrusts its log stream.
func (s *Session) Degraded() bool { return s.degradedNow() }

// ended reports whether the session stopped accepting events.
func (s *Session) ended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == SessionEnded
}

// adopt records that an instance id has been routed to this session.
func (s *Session) adopt(instanceID string, explicit bool) {
	s.mu.Lock()
	s.instances[instanceID] = true
	if explicit {
		s.bound[instanceID] = true
	}
	s.mu.Unlock()
}

// submit hands work to the manager's shared pool, attributing the backlog
// to this session and the instance's shard.
func (s *Session) submit(instanceID string, f func()) {
	s.pending.Add(1)
	s.mgr.submit(instanceID, func() {
		defer s.pending.Add(-1)
		f()
	}, func() { s.pending.Add(-1) })
}

// baseParams assembles the expectation parameters plus per-event context.
func (s *Session) baseParams(ev logging.Event) assertion.Params {
	p := s.expect.params()
	if id := ev.Field("instanceid"); id != "" {
		p[assertion.ParamInstance] = id
	}
	return p
}

// ---- pipeline.Handler ----

// OnConformance replays the line on the session's private conformance
// context and reacts to anomalies. The conforming path (every routed
// line) is allocation-budgeted; the anomalous branch below the verdict
// check runs once per detection, not per line, and carries suppressions.
//
// Budget note: all 10 admitted escape sites sit below the anomalous-verdict
// check (once per detection); the conforming per-line path is escape-free.
//
//podlint:hotpath budget=10
func (s *Session) OnConformance(instanceID, line string, ev logging.Event) {
	if s.ended() {
		return
	}
	// Every routed line anchors the evidence timeline — even when
	// conformance checking is ablated — because detections and causes
	// must chain back to a raw log event.
	evEntry := s.recordLogEvent(instanceID, ev)
	if s.mgr.cfg.DisableConformance {
		return
	}
	// In degraded mode the checker absorbs forward deviations by
	// resynchronizing the token replay at the next recognized step — a
	// missing line must not masquerade as a wrong-path operation.
	degraded := s.degradedNow()
	res := s.checker.CheckLossy(instanceID, line, ev.Timestamp, degraded)
	s.mgr.publishConformance(instanceID, res, ev)
	if !res.Verdict.IsAnomalous() {
		return
	}
	stepID := res.StepID
	if stepID == "" && res.Context != nil {
		stepID = res.Context.LastValidStep
	}
	confEntry := s.flight.Record(flight.Entry{
		Kind:    flight.KindConformance,
		At:      ev.Timestamp,
		Parents: parentsOf(evEntry),
		Message: res.Summary(),
		//podlint:ignore GO010 anomalous branch only (once per detection, not per line); the ring takes ownership of Attrs
		Attrs: map[string]string{
			"verdict":  string(res.Verdict),
			"step":     stepID,
			"degraded": strconv.FormatBool(degraded),
		},
	})
	key := "conf|" + instanceID + "|" + string(res.Verdict) + "|" + stepID
	if !s.shouldDiagnose(key) {
		return
	}
	params := s.baseParams(ev)
	//podlint:ignore GO010 anomalous branch only — the detection detail is built once per diagnosis trigger
	detail := fmt.Sprintf("conformance %s on line %q", res.Verdict, line)
	detEntry, detAt := s.recordDetection(diagnosis.SourceConformance,
		res.Verdict.Tag(), stepID, detail, ev.Timestamp, degraded, confEntry)
	// The closure captures only the scalars it needs — capturing ev or res
	// directly would move the whole event to the heap on every call,
	// including the conforming (hot) path.
	ts, trigger := ev.Timestamp, res.Verdict.Tag()
	s.submit(instanceID, func() {
		d := s.mgr.diag.Diagnose(s.diagCtx(detEntry), diagnosis.Request{
			Source:            diagnosis.SourceConformance,
			ProcessInstanceID: instanceID,
			StepID:            stepID,
			Params:            params,
			Detail:            detail,
			Degraded:          degraded,
		})
		s.observeDiagnosisSLO(d, detAt, degraded)
		s.record(Detection{
			At:         ts,
			Source:     diagnosis.SourceConformance,
			TriggerID:  trigger,
			StepID:     stepID,
			InstanceID: instanceID,
			Message:    detail,
			Diagnosis:  d,
			Degraded:   degraded,
			Confidence: confidence(degraded),
			EvidenceID: detEntry,
		}, key)
	})
}

// parentsOf builds a parent-id list from the non-zero entry ids.
func parentsOf(ids ...uint64) []uint64 {
	var out []uint64
	for _, id := range ids {
		if id != 0 {
			out = append(out, id)
		}
	}
	return out
}

// recordLogEvent anchors one routed line in the evidence timeline and
// remembers it as the instance's latest entry, the parent for whatever
// that line triggers.
//
//podlint:hotpath budget=1
func (s *Session) recordLogEvent(instanceID string, ev logging.Event) uint64 {
	if s.flight == nil {
		return 0
	}
	//podlint:ignore GO010 the evidence ring takes ownership of Attrs — a per-entry map is part of the flight.Entry contract
	attrs := map[string]string{"instance": instanceID}
	if rep := ev.Field("reorder"); rep != "" {
		attrs["reorder"] = rep
	}
	id := s.flight.Record(flight.Entry{
		Kind:    flight.KindLogEvent,
		At:      ev.Timestamp,
		Seq:     ev.Seq,
		Cause:   ev.CauseID,
		Message: ev.Message,
		Attrs:   attrs,
	})
	s.mu.Lock()
	s.lastEntry[instanceID] = id
	s.mu.Unlock()
	return id
}

// recordDetection admits a detection into the evidence timeline and
// observes the event->detection SLO. origin is the trigger's source
// time — the log line's timestamp, or the timer fire. It returns the
// detection entry id and the admission time the diagnosis-latency SLO
// measures from.
func (s *Session) recordDetection(src diagnosis.Source, triggerID, stepID, msg string,
	origin time.Time, degraded bool, parent uint64) (uint64, time.Time) {
	now := s.mgr.clk.Now()
	lat := now.Sub(origin).Seconds()
	if lat < 0 {
		lat = 0
	}
	mSLODetection.With(strconv.FormatBool(degraded), s.mgr.cfg.ChaosLabel).Observe(lat)
	parents := parentsOf(parent)
	if degraded {
		s.mu.Lock()
		gap := s.flightGap
		s.mu.Unlock()
		if gap != 0 && gap != parent {
			parents = append(parents, gap)
		}
	}
	id := s.flight.Record(flight.Entry{
		Kind:    flight.KindDetection,
		At:      now,
		Parents: parents,
		Message: msg,
		Attrs: map[string]string{
			"source":   string(src),
			"trigger":  triggerID,
			"step":     stepID,
			"degraded": strconv.FormatBool(degraded),
		},
	})
	return id, now
}

// diagCtx carries the operation's evidence ring and the detection entry
// into the diagnosis engine. Sessions intentionally diagnose on a
// background context (the walk outlives the pipeline callback), so the
// causal linkage travels as context values.
func (s *Session) diagCtx(detEntry uint64) context.Context {
	return flight.WithParent(flight.NewContext(context.Background(), s.flight), detEntry)
}

// observeDiagnosisSLO records the detection->confirmed-cause latency
// for diagnosis runs that identified a root cause.
func (s *Session) observeDiagnosisSLO(d *diagnosis.Diagnosis, detAt time.Time, degraded bool) {
	if d == nil || d.Conclusion != diagnosis.ConclusionIdentified {
		return
	}
	lat := s.mgr.clk.Since(detAt).Seconds()
	if lat < 0 {
		lat = 0
	}
	mSLODiagnosis.With(strconv.FormatBool(degraded), s.mgr.cfg.ChaosLabel).Observe(lat)
}

// confidence maps the degraded flag onto the detection confidence score.
func confidence(degraded bool) float64 {
	if degraded {
		return 0.5
	}
	return 1
}

// OnStepEvent updates progress, resets the one-off step timer and
// evaluates post-step assertions.
func (s *Session) OnStepEvent(instanceID string, node *process.Node, ev logging.Event) {
	if s.ended() {
		return
	}
	// Track operation progress from any line the annotator extracted
	// "k of n" counters from (relaunches done, instances in service, ...).
	if n, err := strconv.Atoi(ev.Field("num")); err == nil {
		s.mu.Lock()
		s.progress[instanceID] = n
		s.mu.Unlock()
	}
	if n, err := strconv.Atoi(ev.Field("total")); err == nil {
		s.mu.Lock()
		s.total[instanceID] = n
		s.mu.Unlock()
	}

	s.resetStepTimer(instanceID, node)

	if s.mgr.cfg.DisableAssertions {
		return
	}
	trig := assertion.Trigger{
		Source:            assertion.TriggerLog,
		ProcessInstanceID: instanceID,
		StepID:            node.StepID,
	}
	// The step line was anchored by OnConformance just before this
	// handler ran; it is the causal parent of every post-step assertion.
	anchor := s.lastEntryOf(instanceID)
	origin := ev.Timestamp
	for _, b := range s.stepBindings(instanceID, node, ev) {
		b := b
		s.submit(instanceID, func() { s.evaluateAndMaybeDiagnose(b.checkID, b.params, trig, anchor, origin) })
	}
}

// OnErrorLine is part of pipeline.Handler; known-error lines already
// surface through conformance and assertions, so it only forwards context.
func (s *Session) OnErrorLine(instanceID, line string, ev logging.Event) {}

// OnProcessStart arms the periodic capacity assertion (§III.B.1: "the
// timer setter uses the log line indicating the start of the operation
// process to start the periodic timer").
func (s *Session) OnProcessStart(instanceID string, ev logging.Event) {
	if s.mgr.cfg.DisableAssertions || s.ended() {
		return
	}
	base := s.expect.params()
	vars := s.vars(instanceID, ev)
	trig := assertion.Trigger{
		Source:            assertion.TriggerTimer,
		ProcessInstanceID: instanceID,
	}
	cancels := make([]func(), 0, 1)
	for _, pb := range s.spec.Periodic() {
		params, ok := pb.Resolve(base, vars)
		if !ok {
			continue
		}
		interval := pb.Every
		if s.periodicInterval > 0 {
			// The session-level interval overrides the spec's default, so
			// experiments can tune the cadence without editing the spec.
			interval = s.periodicInterval
		}
		checkID := pb.CheckID
		cancels = append(cancels, s.mgr.timers.Every(interval, func() {
			mTimerFires.With("periodic").Inc()
			fireAt := s.mgr.clk.Now()
			// Each fire chains back to the instance's latest observed line
			// — the evidence the capacity check judges against. Resolved at
			// fire time, not arming time: this hook runs before the
			// process-start line itself is anchored in the flight ring, so
			// an arming-time anchor would be empty and every periodic
			// detection's evidence chain would dead-end short of a log
			// event.
			anchor := s.lastEntryOf(instanceID)
			s.submit(instanceID, func() {
				s.evaluateAndMaybeDiagnose(checkID, params, trig, anchor, fireAt)
			})
		}))
	}
	if len(cancels) == 0 {
		return
	}
	s.mu.Lock()
	if old, ok := s.perioCancel[instanceID]; ok {
		old()
	}
	s.perioCancel[instanceID] = func() {
		for _, c := range cancels {
			c()
		}
	}
	s.mu.Unlock()
}

// OnProcessEnd stops the instance's timers; when every explicitly bound
// instance of a bind-only session has completed, the session auto-ends.
func (s *Session) OnProcessEnd(instanceID string, ev logging.Event) {
	s.mu.Lock()
	if cancel, ok := s.perioCancel[instanceID]; ok {
		cancel()
		delete(s.perioCancel, instanceID)
	}
	if cancel, ok := s.stepCancel[instanceID]; ok {
		cancel()
		delete(s.stepCancel, instanceID)
	}
	s.completed[instanceID] = true
	autoEnd := !s.matchAny && !s.matchASG && s.state == SessionActive && len(s.bound) > 0
	if autoEnd {
		for id := range s.bound {
			if !s.completed[id] {
				autoEnd = false
				break
			}
		}
	}
	s.mu.Unlock()
	if autoEnd {
		s.End()
	}
}

// ---- assertions and diagnosis ----

// binding is one resolved assertion evaluation to run.
type binding struct {
	checkID string
	params  assertion.Params
}

// vars assembles the specification variables available at this point of
// the process: cluster-level targets plus the event's extracted context.
func (s *Session) vars(instanceID string, ev logging.Event) map[string]string {
	s.mu.Lock()
	progress := s.progress[instanceID]
	total, hasTotal := s.total[instanceID]
	s.mu.Unlock()
	next := progress + 1
	if hasTotal && next > total {
		next = total
	}
	v := map[string]string{
		"n":        strconv.Itoa(s.expect.ClusterSize),
		"min":      strconv.Itoa(s.expect.MinInService),
		"progress": strconv.Itoa(progress),
		"next":     strconv.Itoa(next),
	}
	if id := ev.Field("instanceid"); id != "" {
		v["instanceid"] = id
	}
	return v
}

// stepBindings resolves the specification's post-step assertions for the
// given step. Bindings whose variables cannot be resolved from the event
// (e.g. instance-version without an instance id) are skipped.
func (s *Session) stepBindings(instanceID string, node *process.Node, ev logging.Event) []binding {
	specBindings := s.spec.ByStep(node.StepID)
	if len(specBindings) == 0 {
		return nil
	}
	base := s.baseParams(ev)
	vars := s.vars(instanceID, ev)
	out := make([]binding, 0, len(specBindings))
	for _, sb := range specBindings {
		params, ok := sb.Resolve(base, vars)
		if !ok {
			continue
		}
		out = append(out, binding{sb.CheckID, params})
	}
	return out
}

// evaluateAndMaybeDiagnose runs one assertion; a non-pass result is a
// detection and triggers diagnosis. anchor is the evidence entry of the
// log line (or arming line, for timers) that caused the evaluation;
// origin is the trigger's source time for the detection-latency SLO.
func (s *Session) evaluateAndMaybeDiagnose(checkID string, p assertion.Params,
	trig assertion.Trigger, anchor uint64, origin time.Time) {
	// Standalone evaluations get the same per-test clock deadline the
	// diagnosis engine applies to its on-demand tests.
	ctx, cancel := clock.ContextWithTimeout(context.Background(), s.mgr.clk, s.mgr.diag.Options().TestTimeout)
	res := s.mgr.evaluator.Evaluate(ctx, checkID, p, trig)
	cancel()
	if res.Passed() {
		return
	}
	if anchor == 0 {
		// A timer armed before the instance's first line was anchored
		// resolves to no parent; fall back to the latest line now so the
		// evidence chain still bottoms out at a real log event.
		anchor = s.lastEntryOf(trig.ProcessInstanceID)
	}
	assertEntry := s.flight.Record(flight.Entry{
		Kind:    flight.KindAssertion,
		At:      res.EvaluatedAt,
		Parents: parentsOf(anchor),
		Message: res.Message,
		Attrs: map[string]string{
			"check":   checkID,
			"trigger": string(trig.Source),
			"status":  res.Status.String(),
		},
	})
	key := "assert|" + trig.ProcessInstanceID + "|" + checkID + "|" + trig.StepID
	if !s.shouldDiagnose(key) {
		return
	}
	src := diagnosis.SourceAssertion
	if trig.Source == assertion.TriggerTimer {
		src = diagnosis.SourceTimer
	}
	degraded := s.degradedNow()
	detEntry, detAt := s.recordDetection(src, checkID, trig.StepID, res.Message,
		origin, degraded, assertEntry)
	d := s.mgr.diag.Diagnose(s.diagCtx(detEntry), diagnosis.Request{
		AssertionID:       checkID,
		Source:            src,
		ProcessInstanceID: trig.ProcessInstanceID,
		StepID:            trig.StepID,
		Params:            p,
		Detail:            res.Message,
		Degraded:          degraded,
	})
	s.observeDiagnosisSLO(d, detAt, degraded)
	s.record(Detection{
		At:         res.EvaluatedAt,
		Source:     src,
		TriggerID:  checkID,
		StepID:     trig.StepID,
		InstanceID: trig.ProcessInstanceID,
		Message:    res.Message,
		Diagnosis:  d,
		Degraded:   degraded,
		Confidence: confidence(degraded),
		EvidenceID: detEntry,
	}, key)
}

// resetStepTimer cancels the previous one-off timer for the instance and
// arms a new one sized from the step's historical duration: if the next
// step's log line does not arrive in time, the high-level version-count
// assertion is evaluated with the next expected progress (a purely
// timer-based trigger, which carries no instance id — §VI.A).
func (s *Session) resetStepTimer(instanceID string, node *process.Node) {
	s.mu.Lock()
	if cancel, ok := s.stepCancel[instanceID]; ok {
		cancel()
		delete(s.stepCancel, instanceID)
	}
	if node.ID == process.NodeCompleted {
		s.mu.Unlock()
		return
	}
	mean := node.MeanDuration
	if mean <= 0 {
		mean = 30 * time.Second
	}
	deadline := time.Duration(float64(mean) * s.stepSlack)
	s.mu.Unlock()

	if s.mgr.cfg.DisableAssertions {
		return
	}
	timeouts := s.spec.TimeoutsFor(node.StepID)
	if len(timeouts) == 0 {
		return
	}
	base := s.expect.params()
	vars := s.vars(instanceID, logging.Event{})
	trig := assertion.Trigger{
		Source:            assertion.TriggerTimer,
		ProcessInstanceID: instanceID,
		// No step id: the timer fires between steps (weak context).
	}
	// Timer detections chain back to the step line that armed the
	// deadline — the last line seen before the silence being detected.
	anchor := s.lastEntryOf(instanceID)
	cancels := make([]func(), 0, len(timeouts))
	for _, tb := range timeouts {
		params, ok := tb.Resolve(base, vars)
		if !ok {
			continue
		}
		checkID := tb.CheckID
		cancels = append(cancels, s.mgr.timers.After(deadline, func() {
			mTimerFires.With("step").Inc()
			fireAt := s.mgr.clk.Now()
			s.submit(instanceID, func() {
				s.evaluateAndMaybeDiagnose(checkID, params, trig, anchor, fireAt)
			})
		}))
	}
	if len(cancels) == 0 {
		return
	}
	s.mu.Lock()
	if s.state == SessionEnded {
		// Lost the race with End: don't leave orphaned timers behind.
		s.mu.Unlock()
		for _, c := range cancels {
			c()
		}
		return
	}
	s.stepCancel[instanceID] = func() {
		for _, c := range cancels {
			c()
		}
	}
	s.mu.Unlock()
}

// ---- bookkeeping ----

func (s *Session) progressOf(instanceID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.progress[instanceID]
}

// shouldDiagnose dedups diagnosis triggers and enforces the detection cap.
// A trigger key is retried up to three times while its diagnoses remain
// inconclusive — matching the paper's observation that repeated failures
// re-enter diagnosis — but once a root cause is identified the key is
// settled.
func (s *Session) shouldDiagnose(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.identified[key] || s.seen[key] >= 3 {
		return false
	}
	if len(s.detections) >= s.maxDetections {
		return false
	}
	s.seen[key]++
	return true
}

// record appends a detection and settles its originating dedup key when
// the diagnosis identified a root cause. The key is the exact string that
// shouldDiagnose admitted, so conformance and assertion triggers settle
// independently and precisely.
func (s *Session) record(d Detection, dedupKey string) {
	d.Operation = s.id
	mDetections.With(string(d.Source)).Inc()
	mOpDetections.With(s.id).Inc()
	s.mu.Lock()
	if d.Diagnosis != nil && d.Diagnosis.Conclusion == diagnosis.ConclusionIdentified && dedupKey != "" {
		s.identified[dedupKey] = true
	}
	if len(s.detections) < s.maxDetections {
		s.detections = append(s.detections, d)
	}
	s.mu.Unlock()
	// Remediation runs outside s.mu: auto-mode actions call the simulated
	// cloud synchronously, and the engine's idempotency keys make the
	// unlocked window race-free (a re-diagnosed cause dedupes).
	s.maybeRemediate(d)
}

// maybeRemediate offers each confirmed root cause of the detection's
// diagnosis to the manager's remediation engine, closing the
// detect → diagnose → repair loop. Causes over the detection cap still
// remediate — the cap bounds the audit list, not recovery.
func (s *Session) maybeRemediate(d Detection) {
	eng := s.mgr.rem
	if eng == nil || d.Diagnosis == nil || d.Diagnosis.Conclusion != diagnosis.ConclusionIdentified {
		return
	}
	target := remediate.Target{
		Cloud:       s.mgr.cfg.Cloud,
		ASGName:     s.expect.ASGName,
		ELBName:     s.expect.ELBName,
		NewLCName:   s.expect.NewLCName,
		OldLCName:   s.expect.OldLCName,
		ClusterSize: s.expect.ClusterSize,
		Op:          s.remCtl,
	}
	for _, c := range d.Diagnosis.RootCauses {
		if !c.Confirmed {
			continue
		}
		eng.Trigger(context.Background(), remediate.Trigger{
			Operation:  s.id,
			CauseNode:  c.NodeID,
			CausePath:  c.Path,
			CauseEntry: c.EvidenceID,
			StepID:     d.StepID,
			Flight:     s.flight,
			Target:     target,
		})
	}
}

// SessionSummary is the serializable view of a session (GET /operations).
type SessionSummary struct {
	ID         string       `json:"id"`
	State      SessionState `json:"state"`
	Expect     Expectation  `json:"expect"`
	Instances  []string     `json:"instances,omitempty"`
	Detections int          `json:"detections"`
	Pending    int          `json:"pending"`
	Degraded   bool         `json:"degraded,omitempty"`
}

// Summary snapshots the session for serving surfaces.
func (s *Session) Summary() SessionSummary {
	s.mu.Lock()
	instances := make([]string, 0, len(s.instances))
	for id := range s.instances {
		instances = append(instances, id)
	}
	n := len(s.detections)
	state := s.state
	s.mu.Unlock()
	return SessionSummary{
		ID:         s.id,
		State:      state,
		Expect:     s.expect,
		Instances:  instances,
		Detections: n,
		Pending:    s.Pending(),
		Degraded:   s.degradedNow(),
	}
}
