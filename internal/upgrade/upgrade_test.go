package upgrade

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
)

// env bundles a started cloud, bus and deployed cluster for upgrade tests.
type env struct {
	cloud   *simaws.Cloud
	bus     *logging.Bus
	sink    *logging.MemorySink
	cluster *Cluster
	ctx     context.Context
	drained chan struct{}
	sub     *logging.Subscription
}

func newEnv(t *testing.T, size int) *env {
	t.Helper()
	clk := clock.NewScaled(600, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	// Give instances a small but visible boot time so replacement waits
	// exercise the polling loop.
	profile.BootTime = clock.Fixed(3 * time.Second) // 5ms wall at 600x
	profile.TickInterval = 500 * time.Millisecond
	cloud := simaws.New(clk, profile, simaws.WithSeed(7), simaws.WithBus(bus))
	cloud.Start()
	t.Cleanup(func() { cloud.Stop(); bus.Close() })

	sink := logging.NewMemorySink()
	sub := bus.Subscribe(4096, logging.TypeFilter(logging.TypeOperation))
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for e := range sub.C {
			sink.Write(e)
		}
	}()

	ctx := context.Background()
	cluster, err := Deploy(ctx, cloud, "pm", size, "v1")
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if err := cluster.WaitReady(ctx, cloud, 5*time.Minute); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return &env{cloud: cloud, bus: bus, sink: sink, cluster: cluster, ctx: ctx, drained: drained, sub: sub}
}

// messages returns the raw operation log messages captured so far.
func (e *env) messages(t *testing.T) []string {
	t.Helper()
	e.sub.Cancel()
	<-e.drained
	var out []string
	for _, ev := range e.sink.Events() {
		out = append(out, ev.Message)
	}
	return out
}

func TestRollingUpgradeReplacesAllInstances(t *testing.T) {
	e := newEnv(t, 4)
	amiV2, err := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	if err != nil {
		t.Fatal(err)
	}
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.Run(e.ctx, e.cluster.UpgradeSpec("pushing pm--asg", amiV2))
	if rep.Err != nil {
		t.Fatalf("upgrade failed: %v", rep.Err)
	}
	if len(rep.Replaced) != 4 || len(rep.NewInstances) != 4 {
		t.Fatalf("replaced %d, new %d", len(rep.Replaced), len(rep.NewInstances))
	}
	instances, err := e.cloud.DescribeInstances(e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	v2 := 0
	for _, inst := range instances {
		if inst.State == simaws.StateInService && inst.ASGName == e.cluster.ASGName {
			if inst.Version != "v2" {
				t.Errorf("instance %s still on %s", inst.ID, inst.Version)
			}
			v2++
		}
	}
	if v2 != 4 {
		t.Fatalf("in-service v2 count = %d", v2)
	}
}

func TestRollingUpgradeLogsConformToModel(t *testing.T) {
	e := newEnv(t, 3)
	amiV2, _ := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.Run(e.ctx, e.cluster.UpgradeSpec("task-42", amiV2))
	if rep.Err != nil {
		t.Fatalf("upgrade failed: %v", rep.Err)
	}
	model := process.RollingUpgradeModel()
	msgs := e.messages(t)
	if len(msgs) == 0 {
		t.Fatal("no operation logs captured")
	}
	for _, raw := range msgs {
		_, _, body, ok := logging.ParseOperationLine(raw)
		if !ok {
			t.Fatalf("unparseable operation line %q", raw)
		}
		if _, ok := model.Classify(body); !ok {
			t.Errorf("line not classified by model: %q", body)
		}
	}
}

func TestRollingUpgradeBatchSizeTwo(t *testing.T) {
	e := newEnv(t, 4)
	amiV2, _ := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	up := NewUpgrader(e.cloud, e.bus)
	spec := e.cluster.UpgradeSpec("task-b2", amiV2)
	spec.BatchSize = 2
	rep := up.Run(e.ctx, spec)
	if rep.Err != nil {
		t.Fatalf("upgrade failed: %v", rep.Err)
	}
	if len(rep.NewInstances) != 4 {
		t.Fatalf("new instances = %d", len(rep.NewInstances))
	}
}

func TestUpgradeFailsWhenAMIUnavailable(t *testing.T) {
	e := newEnv(t, 2)
	amiV2, _ := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	// Deregister the new AMI before the upgrade creates its LC.
	if err := e.cloud.DeregisterImage(e.ctx, amiV2); err != nil {
		t.Fatal(err)
	}
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.Run(e.ctx, e.cluster.UpgradeSpec("task-f", amiV2))
	if rep.Err == nil {
		t.Fatal("upgrade succeeded with unavailable AMI")
	}
	if code := simaws.ErrorCode(errors.Unwrap(rep.Err)); code != "" && code != simaws.ErrCodeInvalidAMINotFound {
		t.Errorf("unexpected code %s", code)
	}
	// An Asgard-style ERROR line must have been emitted.
	msgs := e.messages(t)
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "ERROR:") {
			found = true
		}
	}
	if !found {
		t.Error("no ERROR line logged")
	}
}

func TestUpgradeTimesOutWhenReplacementNeverComes(t *testing.T) {
	e := newEnv(t, 2)
	amiV2, _ := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	up := NewUpgrader(e.cloud, e.bus)
	spec := e.cluster.UpgradeSpec("task-t", amiV2)
	spec.WaitTimeout = 30 * time.Second
	spec.PollInterval = 2 * time.Second

	// Delete the new AMI right after the LC is created: the LC exists but
	// launches fail, so no replacement ever appears. Deleting after LC
	// creation requires a small delay.
	spec.NewLCName = spec.ASGName + "-lc-v2"
	lcName := spec.NewLCName
	go func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if _, err := e.cloud.DescribeLaunchConfiguration(e.ctx, lcName); err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_ = e.cloud.DeregisterImage(e.ctx, amiV2)
	}()

	rep := up.Run(e.ctx, spec)
	if rep.Err == nil {
		t.Fatal("upgrade succeeded despite launch failures")
	}
	if !errors.Is(rep.Err, ErrTimeout) && !strings.Contains(rep.Err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", rep.Err)
	}
}

func TestUpgradeRespectsContextCancellation(t *testing.T) {
	e := newEnv(t, 2)
	amiV2, _ := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	ctx, cancel := context.WithCancel(e.ctx)
	cancel()
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.Run(ctx, e.cluster.UpgradeSpec("task-c", amiV2))
	if rep.Err == nil {
		t.Fatal("upgrade succeeded with cancelled context")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := (&Spec{TaskID: "t", ASGName: "g", NewImageID: "ami-1"}).withDefaults()
	if s.BatchSize != 1 {
		t.Errorf("BatchSize = %d", s.BatchSize)
	}
	if s.WaitTimeout <= 0 || s.PollInterval <= 0 {
		t.Error("timeouts not defaulted")
	}
	if s.NewLCName != "g-lc-ami-1" {
		t.Errorf("NewLCName = %q", s.NewLCName)
	}
	if s.AppName != "g" {
		t.Errorf("AppName = %q", s.AppName)
	}
}

func TestDeployIsIdempotentPerName(t *testing.T) {
	e := newEnv(t, 1)
	// Deploying the same app name again must fail cleanly on the key pair.
	if _, err := Deploy(e.ctx, e.cloud, "pm", 1, "v1"); err == nil {
		t.Fatal("second deploy of same app succeeded")
	}
}

func TestUpgradeNoOldInstancesCompletesImmediately(t *testing.T) {
	e := newEnv(t, 2)
	// "Upgrade" to the same image: after LC update, zero old instances
	// (they already run the target LC? no — LC name differs). Use a fresh
	// image but terminate the group first by scaling to zero.
	if err := e.cloud.UpdateAutoScalingGroup(e.ctx, e.cluster.ASGName, "", 0, -1, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		asg, err := e.cloud.DescribeAutoScalingGroup(e.ctx, e.cluster.ASGName)
		if err == nil && len(asg.Instances) == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	amiV2, _ := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.Run(e.ctx, e.cluster.UpgradeSpec("task-e", amiV2))
	if rep.Err != nil {
		t.Fatalf("empty upgrade failed: %v", rep.Err)
	}
	if len(rep.Replaced) != 0 {
		t.Fatalf("replaced = %v", rep.Replaced)
	}
}
