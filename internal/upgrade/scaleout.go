package upgrade

import (
	"context"
	"fmt"
	"sort"
	"time"

	"poddiagnosis/internal/simaws"
)

// ScaleOutSpec describes one scale-out task: grow the group to Target
// in-service instances.
type ScaleOutSpec struct {
	// TaskID is the process instance id.
	TaskID string
	// ASGName is the group to grow.
	ASGName string
	// ELBName is the load balancer fronting the group.
	ELBName string
	// Target is the new desired capacity.
	Target int
	// WaitTimeout bounds the wait for each joining instance. Defaults to
	// 6 minutes.
	WaitTimeout time.Duration
	// PollInterval is the join polling cadence. Defaults to 5 s.
	PollInterval time.Duration
}

func (s *ScaleOutSpec) withDefaults() ScaleOutSpec {
	out := *s
	if out.WaitTimeout <= 0 {
		out.WaitTimeout = 6 * time.Minute
	}
	if out.PollInterval <= 0 {
		out.PollInterval = 5 * time.Second
	}
	return out
}

// RunScaleOut executes the scale-out process: record the starting size,
// request the new desired capacity, then loop until Target instances are
// in service and registered, logging each join. The emitted vocabulary
// matches process.ScaleOutModel.
func (u *Upgrader) RunScaleOut(ctx context.Context, spec ScaleOutSpec) *Report {
	spec = spec.withDefaults()
	rep := &Report{TaskID: spec.TaskID, Started: u.clk.Now()}
	rep.Err = u.runScaleOut(ctx, spec, rep)
	rep.Finished = u.clk.Now()
	return rep
}

func (u *Upgrader) runScaleOut(ctx context.Context, spec ScaleOutSpec, rep *Report) error {
	failSO := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		u.emit(spec.TaskID, "ERROR: %s", msg)
		return fmt.Errorf("scale-out %s: %s", spec.TaskID, msg)
	}

	// sostep1: start.
	known, err := u.inServiceSet(ctx, spec.ASGName)
	if err != nil {
		return failSO("listing group %s: %v", spec.ASGName, err)
	}
	from := len(known)
	u.emit(spec.TaskID, "Starting scale-out of group %s from %d to %d instances", spec.ASGName, from, spec.Target)

	// sostep2: request capacity.
	if err := u.cloud.SetDesiredCapacity(ctx, spec.ASGName, spec.Target); err != nil {
		return failSO("requesting desired capacity %d for group %s: %v", spec.Target, spec.ASGName, err)
	}
	u.emit(spec.TaskID, "Requested desired capacity %d for group %s", spec.Target, spec.ASGName)

	// Loop: sostep3 wait, sostep4 joined, until Target in service.
	inService := from
	for inService < spec.Target {
		u.emit(spec.TaskID, "Waiting for group %s to reach %d in-service instances", spec.ASGName, spec.Target)
		id, err := u.waitForJoin(ctx, spec, known)
		if err != nil {
			return failSO("waiting for group %s to grow: %v", spec.ASGName, err)
		}
		known[id] = true
		inService++
		rep.NewInstances = append(rep.NewInstances, id)
		u.emit(spec.TaskID, "Instance %s joined group %s. %d of %d instances in service.",
			id, spec.ASGName, inService, spec.Target)
		u.emit(spec.TaskID, "Scale-out status: %d of %d instances in service", inService, spec.Target)
	}

	// sostep5: completed.
	u.emit(spec.TaskID, "Scale-out of group %s completed", spec.ASGName)
	return nil
}

// inServiceSet snapshots the ids of the group's in-service instances.
func (u *Upgrader) inServiceSet(ctx context.Context, asgName string) (map[string]bool, error) {
	instances, err := u.cloud.DescribeInstances(ctx)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, inst := range instances {
		if inst.ASGName == asgName && inst.State == simaws.StateInService {
			set[inst.ID] = true
		}
	}
	return set, nil
}

// waitForJoin polls until one new instance is in service and registered.
func (u *Upgrader) waitForJoin(ctx context.Context, spec ScaleOutSpec, known map[string]bool) (string, error) {
	deadline := u.clk.Now().Add(spec.WaitTimeout)
	for {
		if u.clk.Now().After(deadline) {
			return "", fmt.Errorf("%w after %v", ErrTimeout, spec.WaitTimeout)
		}
		if err := u.clk.Sleep(ctx, spec.PollInterval); err != nil {
			return "", err
		}
		instances, err := u.cloud.DescribeInstances(ctx)
		if err != nil {
			if simaws.IsRetryable(err) {
				continue
			}
			return "", err
		}
		registered := map[string]bool{}
		if spec.ELBName != "" {
			elb, err := u.cloud.DescribeLoadBalancer(ctx, spec.ELBName)
			if err != nil {
				if simaws.IsRetryable(err) || simaws.IsNotFound(err) {
					continue
				}
				return "", err
			}
			for _, id := range elb.Instances {
				registered[id] = true
			}
		}
		var fresh []string
		for _, inst := range instances {
			if inst.ASGName == spec.ASGName && !known[inst.ID] &&
				inst.State == simaws.StateInService &&
				(spec.ELBName == "" || registered[inst.ID]) {
				fresh = append(fresh, inst.ID)
			}
		}
		if len(fresh) > 0 {
			sort.Strings(fresh)
			return fresh[0], nil
		}
	}
}
