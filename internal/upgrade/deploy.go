package upgrade

import (
	"context"
	"fmt"
	"time"

	"poddiagnosis/internal/simaws"
)

// AppServices are the components of the paper's evaluation application: a
// distributed log monitoring stack (§V.B).
var AppServices = []string{"redis", "logstash", "elasticsearch", "kibana"}

// Cluster records the cloud resources of one deployed application cluster.
type Cluster struct {
	// AppName is the application label, e.g. "pm".
	AppName string
	// Size is the desired instance count.
	Size int
	// ImageID is the currently deployed AMI.
	ImageID string
	// Version is the application version of that AMI.
	Version string
	// KeyName, SGName, LCName, ELBName and ASGName identify the
	// supporting resources.
	KeyName string
	SGName  string
	LCName  string
	ELBName string
	ASGName string
}

// Deploy provisions a complete application cluster: AMI, key pair,
// security group, launch configuration, ELB, and an ASG that will launch
// size instances. It does not wait for the instances; use WaitReady.
func Deploy(ctx context.Context, cloud *simaws.Cloud, appName string, size int, version string) (*Cluster, error) {
	c := &Cluster{
		AppName: appName,
		Size:    size,
		Version: version,
		KeyName: appName + "-key",
		SGName:  appName + "-sg",
		ELBName: appName + "-elb",
		ASGName: appName + "--asg",
	}
	ami, err := cloud.RegisterImage(ctx, appName+"-"+version, version, AppServices)
	if err != nil {
		return nil, fmt.Errorf("upgrade: deploy %s: %w", appName, err)
	}
	c.ImageID = ami
	c.LCName = fmt.Sprintf("%s-lc-%s", c.ASGName, ami)
	if err := cloud.ImportKeyPair(ctx, c.KeyName); err != nil {
		return nil, fmt.Errorf("upgrade: deploy %s: %w", appName, err)
	}
	if _, err := cloud.CreateSecurityGroup(ctx, c.SGName, []int{22, 80, 6379, 9200}); err != nil {
		return nil, fmt.Errorf("upgrade: deploy %s: %w", appName, err)
	}
	if err := cloud.CreateLaunchConfiguration(ctx, simaws.LaunchConfig{
		Name:           c.LCName,
		ImageID:        ami,
		KeyName:        c.KeyName,
		SecurityGroups: []string{c.SGName},
		InstanceType:   "m1.small",
	}); err != nil {
		return nil, fmt.Errorf("upgrade: deploy %s: %w", appName, err)
	}
	if err := cloud.CreateLoadBalancer(ctx, c.ELBName); err != nil {
		return nil, fmt.Errorf("upgrade: deploy %s: %w", appName, err)
	}
	if err := cloud.CreateAutoScalingGroup(ctx, simaws.ASG{
		Name:             c.ASGName,
		LaunchConfigName: c.LCName,
		Min:              0,
		Max:              size * 3,
		Desired:          size,
		LoadBalancers:    []string{c.ELBName},
	}); err != nil {
		return nil, fmt.Errorf("upgrade: deploy %s: %w", appName, err)
	}
	return c, nil
}

// WaitReady blocks until the cluster has Size in-service instances
// registered with the ELB, or the timeout elapses.
func (c *Cluster) WaitReady(ctx context.Context, cloud *simaws.Cloud, timeout time.Duration) error {
	clk := cloud.Clock()
	deadline := clk.Now().Add(timeout)
	for {
		if clk.Now().After(deadline) {
			return fmt.Errorf("upgrade: cluster %s not ready after %v", c.AppName, timeout)
		}
		health, err := cloud.DescribeInstanceHealth(ctx, c.ELBName)
		if err == nil {
			ready := 0
			for _, h := range health {
				if h.State == "InService" {
					ready++
				}
			}
			if ready >= c.Size {
				return nil
			}
		} else if !simaws.IsRetryable(err) && !simaws.IsNotFound(err) {
			// NotFound can be an eventually-consistent read of a
			// just-created resource; keep polling.
			return fmt.Errorf("upgrade: waiting for cluster %s: %w", c.AppName, err)
		}
		if err := clk.Sleep(ctx, time.Second); err != nil {
			return err
		}
	}
}

// UpgradeSpec returns a Spec that upgrades the cluster to the given image,
// with the given task id.
func (c *Cluster) UpgradeSpec(taskID, newImageID string) Spec {
	return Spec{
		TaskID:     taskID,
		AppName:    c.AppName,
		ASGName:    c.ASGName,
		ELBName:    c.ELBName,
		NewImageID: newImageID,
	}
}
