// Package upgrade implements the operation node of the paper's case study:
// an Asgard-style rolling upgrade orchestrator (§II) driving the simulated
// cloud, plus the simultaneous operations used as interference in the
// evaluation (ASG scale-in/out, random instance termination).
//
// The orchestrator is deliberately unaware of POD-Diagnosis: it only emits
// Asgard-style log lines to the log bus. Error detection and diagnosis are
// layered on top, non-intrusively, exactly as the paper prescribes.
package upgrade

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
)

// ErrTimeout is returned when a replacement instance does not appear in
// time.
var ErrTimeout = errors.New("upgrade: timed out waiting for replacement instance")

// Spec describes one rolling upgrade task.
type Spec struct {
	// TaskID is the process instance id, e.g. "pushing pm--asg". It tags
	// every log line of the task.
	TaskID string
	// AppName is the application label used in log lines (e.g. "pm").
	AppName string
	// ASGName is the auto scaling group to upgrade.
	ASGName string
	// ELBName is the load balancer fronting the group.
	ELBName string
	// NewImageID is the AMI of the new version.
	NewImageID string
	// NewLCName names the launch configuration to create; generated from
	// the ASG and image when empty.
	NewLCName string
	// BatchSize is how many instances are replaced at a time (k = N-N').
	// Defaults to 1.
	BatchSize int
	// WaitTimeout bounds the wait for each replacement batch. Defaults
	// to 6 minutes (simulated).
	WaitTimeout time.Duration
	// PollInterval is the replacement polling cadence. Defaults to 5 s.
	PollInterval time.Duration
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.BatchSize <= 0 {
		out.BatchSize = 1
	}
	if out.WaitTimeout <= 0 {
		out.WaitTimeout = 6 * time.Minute
	}
	if out.PollInterval <= 0 {
		out.PollInterval = 5 * time.Second
	}
	if out.NewLCName == "" {
		out.NewLCName = fmt.Sprintf("%s-lc-%s", out.ASGName, out.NewImageID)
	}
	if out.AppName == "" {
		out.AppName = out.ASGName
	}
	return out
}

// Report summarizes a finished (or aborted) rolling upgrade.
type Report struct {
	// TaskID is the process instance id.
	TaskID string
	// Replaced lists the old instance ids that were replaced.
	Replaced []string
	// NewInstances lists the replacement instance ids observed.
	NewInstances []string
	// Started and Finished bound the task in simulated time.
	Started, Finished time.Time
	// Err is the terminal error, nil on success.
	Err error
}

// Upgrader performs rolling upgrades against a simulated cloud, logging to
// a bus.
type Upgrader struct {
	cloud *simaws.Cloud
	bus   *logging.Bus
	clk   clock.Clock
	host  string
}

// NewUpgrader returns an Upgrader. The bus may be nil (logs are dropped),
// which is useful in tests that only care about cloud effects.
func NewUpgrader(cloud *simaws.Cloud, bus *logging.Bus) *Upgrader {
	return &Upgrader{cloud: cloud, bus: bus, clk: cloud.Clock(), host: "operation-node"}
}

// emit publishes one Asgard-style operation log line.
func (u *Upgrader) emit(taskID, format string, args ...any) {
	if u.bus == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	ts := u.clk.Now()
	u.bus.Publish(logging.Event{
		Timestamp:  ts,
		Source:     "asgard.log",
		SourceHost: u.host,
		Type:       logging.TypeOperation,
		Fields:     map[string]string{"taskid": taskID},
		Message:    logging.FormatOperationLine(ts, taskID, msg),
	})
}

// Run executes the rolling upgrade of Figure 2: update the launch
// configuration, sort the old instances, then loop — deregister, terminate,
// wait for the ASG to start a replacement, confirm it is ready and
// registered — and finally complete. Run blocks until the task finishes,
// fails, or ctx is cancelled.
func (u *Upgrader) Run(ctx context.Context, spec Spec) *Report {
	spec = spec.withDefaults()
	rep := &Report{TaskID: spec.TaskID, Started: u.clk.Now()}
	rep.Err = u.run(ctx, spec, rep)
	rep.Finished = u.clk.Now()
	return rep
}

func (u *Upgrader) run(ctx context.Context, spec Spec, rep *Report) error {
	// Step 1: start task.
	u.emit(spec.TaskID, "Starting rolling upgrade of group %s to image %s", spec.ASGName, spec.NewImageID)

	// Step 2: update launch configuration.
	asg, err := u.cloud.DescribeAutoScalingGroup(ctx, spec.ASGName)
	if err != nil {
		return u.fail(spec, "describing group %s: %v", spec.ASGName, err)
	}
	oldLC, err := u.cloud.DescribeLaunchConfiguration(ctx, asg.LaunchConfigName)
	if err != nil {
		return u.fail(spec, "describing launch configuration %s: %v", asg.LaunchConfigName, err)
	}
	newLC := simaws.LaunchConfig{
		Name:           spec.NewLCName,
		ImageID:        spec.NewImageID,
		KeyName:        oldLC.KeyName,
		SecurityGroups: oldLC.SecurityGroups,
		InstanceType:   oldLC.InstanceType,
	}
	if err := u.cloud.CreateLaunchConfiguration(ctx, newLC); err != nil {
		// A retried task finds its own launch configuration from the first
		// attempt; recreating it is a no-op as long as the existing one
		// carries the intended image (a name collision with a different
		// image is still a failure — some other actor owns the name).
		existing, derr := u.cloud.DescribeLaunchConfiguration(ctx, newLC.Name)
		if simaws.ErrorCode(err) != simaws.ErrCodeAlreadyExists || derr != nil || existing.ImageID != newLC.ImageID {
			return u.fail(spec, "creating launch configuration %s: %v", newLC.Name, err)
		}
	}
	u.emit(spec.TaskID, "Created launch configuration %s with image %s", newLC.Name, spec.NewImageID)
	if err := u.cloud.UpdateAutoScalingGroup(ctx, spec.ASGName, newLC.Name, -1, -1, -1); err != nil {
		return u.fail(spec, "updating group %s: %v", spec.ASGName, err)
	}
	u.emit(spec.TaskID, "Updated group %s to launch configuration %s", spec.ASGName, newLC.Name)

	// Step 3: sort instances.
	old, err := u.oldInstances(ctx, spec)
	if err != nil {
		return u.fail(spec, "listing instances of group %s: %v", spec.ASGName, err)
	}
	u.emit(spec.TaskID, "Sorted %d instances for replacement", len(old))

	// Replacement loop (steps 4-7), one batch at a time.
	total := len(old)
	done := 0
	for done < total {
		batch := old[done:min(done+spec.BatchSize, total)]
		known, err := u.memberSet(ctx, spec.ASGName)
		if err != nil {
			return u.fail(spec, "listing group members: %v", err)
		}
		for _, inst := range batch {
			// Step 4: remove and deregister from ELB.
			if err := u.cloud.DeregisterInstancesFromLoadBalancer(ctx, spec.ELBName, inst.ID); err != nil {
				return u.fail(spec, "deregistering instance %s from ELB %s: %v", inst.ID, spec.ELBName, err)
			}
			u.emit(spec.TaskID, "Removed and deregistered instance %s from ELB %s", inst.ID, spec.ELBName)

			// Step 5: terminate old instance (ASG replaces it).
			if err := u.cloud.TerminateInstanceInAutoScalingGroup(ctx, inst.ID, false); err != nil {
				return u.fail(spec, "terminating instance %s: %v", inst.ID, err)
			}
			u.emit(spec.TaskID, "Terminating old instance %s", inst.ID)
			rep.Replaced = append(rep.Replaced, inst.ID)
		}

		// Step 6: wait for the ASG to start replacements.
		u.emit(spec.TaskID, "Waiting for group %s to start a new instance", spec.ASGName)
		fresh, err := u.waitForReplacements(ctx, spec, known, len(batch))
		if err != nil {
			return u.fail(spec, "waiting for replacement in group %s: %v", spec.ASGName, err)
		}

		// Step 7: new instances ready and registered.
		for _, id := range fresh {
			done++
			rep.NewInstances = append(rep.NewInstances, id)
			u.emit(spec.TaskID, "Instance %s on %s is ready for use. %d of %d instance relaunches done.",
				spec.AppName, id, done, total)
		}
		u.emit(spec.TaskID, "Status: %d of %d instances replaced", done, total)
	}

	// Step 8: completed.
	u.emit(spec.TaskID, "Rolling upgrade task completed")
	return nil
}

// fail logs an Asgard-style error line and returns an error carrying the
// same text.
func (u *Upgrader) fail(spec Spec, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	u.emit(spec.TaskID, "ERROR: %s", msg)
	return fmt.Errorf("upgrade %s: %s", spec.TaskID, msg)
}

// oldInstances lists in-service members of the group still running a
// launch configuration other than the target one, sorted oldest first
// (Asgard's replacement order).
func (u *Upgrader) oldInstances(ctx context.Context, spec Spec) ([]simaws.Instance, error) {
	instances, err := u.cloud.DescribeInstances(ctx)
	if err != nil {
		return nil, err
	}
	var old []simaws.Instance
	for _, inst := range instances {
		if inst.ASGName == spec.ASGName && inst.State == simaws.StateInService &&
			inst.LaunchConfigName != spec.NewLCName {
			old = append(old, inst)
		}
	}
	sort.Slice(old, func(i, j int) bool {
		if !old[i].LaunchTime.Equal(old[j].LaunchTime) {
			return old[i].LaunchTime.Before(old[j].LaunchTime)
		}
		return old[i].ID < old[j].ID
	})
	return old, nil
}

// memberSet snapshots the ids of live group members.
func (u *Upgrader) memberSet(ctx context.Context, asgName string) (map[string]bool, error) {
	asg, err := u.cloud.DescribeAutoScalingGroup(ctx, asgName)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(asg.Instances))
	for _, id := range asg.Instances {
		set[id] = true
	}
	return set, nil
}

// waitForReplacements polls until want instances that were not previously
// group members are in service and registered with the ELB, or the wait
// times out.
func (u *Upgrader) waitForReplacements(ctx context.Context, spec Spec, known map[string]bool, want int) ([]string, error) {
	deadline := u.clk.Now().Add(spec.WaitTimeout)
	for {
		if u.clk.Now().After(deadline) {
			return nil, fmt.Errorf("%w after %v", ErrTimeout, spec.WaitTimeout)
		}
		if err := u.clk.Sleep(ctx, spec.PollInterval); err != nil {
			return nil, err
		}
		instances, err := u.cloud.DescribeInstances(ctx)
		if err != nil {
			if simaws.IsRetryable(err) {
				continue
			}
			return nil, err
		}
		elb, err := u.cloud.DescribeLoadBalancer(ctx, spec.ELBName)
		if err != nil {
			// Retryable errors and possibly-stale NotFound reads keep the
			// poll alive; the wait deadline bounds genuine outages.
			if simaws.IsRetryable(err) || simaws.IsNotFound(err) {
				continue
			}
			return nil, err
		}
		registered := make(map[string]bool, len(elb.Instances))
		for _, id := range elb.Instances {
			registered[id] = true
		}
		var fresh []string
		for _, inst := range instances {
			if inst.ASGName == spec.ASGName && !known[inst.ID] &&
				inst.State == simaws.StateInService && registered[inst.ID] {
				fresh = append(fresh, inst.ID)
			}
		}
		if len(fresh) >= want {
			sort.Strings(fresh)
			return fresh[:want], nil
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
