package upgrade

import (
	"context"
	"fmt"
	"sort"
	"time"

	"poddiagnosis/internal/simaws"
)

// SpotRebalanceSpec describes one spot-rebalance watch: keep a group that
// runs on interruptible capacity at Size in-service instances for the
// watch window, replacing reclaimed instances as they disappear.
type SpotRebalanceSpec struct {
	// TaskID is the process instance id.
	TaskID string
	// ASGName is the group being watched.
	ASGName string
	// ELBName is the load balancer fronting the group (log/report only;
	// replacements register themselves).
	ELBName string
	// Size is the capacity to hold.
	Size int
	// Window is how long the watch runs. Defaults to 5 minutes.
	Window time.Duration
	// WaitTimeout bounds the wait for each replacement. Defaults to
	// 6 minutes.
	WaitTimeout time.Duration
	// PollInterval is the polling cadence. Defaults to 5 s.
	PollInterval time.Duration
}

func (s *SpotRebalanceSpec) withDefaults() SpotRebalanceSpec {
	out := *s
	if out.Window <= 0 {
		out.Window = 5 * time.Minute
	}
	if out.WaitTimeout <= 0 {
		out.WaitTimeout = 6 * time.Minute
	}
	if out.PollInterval <= 0 {
		out.PollInterval = 5 * time.Second
	}
	return out
}

// RunSpotRebalance executes the spot-rebalance watch: poll the group for
// the watch window; each time in-service capacity drops below Size, log
// the interruption and wait for the auto-scaling replacement to come in
// service. The watch completes once the window has elapsed and capacity
// is back at Size. The emitted vocabulary matches
// process.SpotRebalanceModel.
func (u *Upgrader) RunSpotRebalance(ctx context.Context, spec SpotRebalanceSpec) *Report {
	spec = spec.withDefaults()
	rep := &Report{TaskID: spec.TaskID, Started: u.clk.Now()}
	rep.Err = u.runSpotRebalance(ctx, spec, rep)
	rep.Finished = u.clk.Now()
	return rep
}

func (u *Upgrader) runSpotRebalance(ctx context.Context, spec SpotRebalanceSpec, rep *Report) error {
	failSS := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		u.emit(spec.TaskID, "ERROR: %s", msg)
		return fmt.Errorf("spot-rebalance %s: %s", spec.TaskID, msg)
	}

	// ssstep1: start the watch.
	known, err := u.inServiceSet(ctx, spec.ASGName)
	if err != nil {
		return failSS("listing group %s: %v", spec.ASGName, err)
	}
	u.emit(spec.TaskID, "Starting spot rebalance watch of group %s with %d instances", spec.ASGName, len(known))

	// expected tracks the ids believed to be serving; an id in expected
	// observed terminating/terminated is decisive evidence of a real
	// interruption. A merely-short describe is not: an eventually-
	// consistent stale read can underreport membership, but it can never
	// invent a termination that has not happened.
	expected := make(map[string]bool, len(known))
	for id := range known {
		expected[id] = true
	}

	windowEnd := u.clk.Now().Add(spec.Window)
	for {
		instances, err := u.listInstances(ctx, spec)
		if err != nil {
			return failSS("listing group %s: %v", spec.ASGName, err)
		}
		current := make(map[string]bool)
		var victims []string
		for _, inst := range instances {
			if inst.ASGName != spec.ASGName {
				continue
			}
			if inst.State == simaws.StateInService {
				current[inst.ID] = true
			}
			if expected[inst.ID] && (inst.State == simaws.StateTerminating || inst.State == simaws.StateTerminated) {
				victims = append(victims, inst.ID)
			}
		}
		if len(victims) > 0 {
			// ssstep2: instances were reclaimed — the provider interrupted
			// spot capacity (or something else shrank the group; telling
			// the difference is POD's job, not the operator's). Keyed off
			// the persistent terminated states, not the transient capacity
			// gap, so a reclamation the group replaces between two polls is
			// still reported.
			u.emit(spec.TaskID, "Waiting for group %s to replace %d interrupted instances", spec.ASGName, len(victims))
			id, err := u.waitForReplacement(ctx, spec, known)
			if err != nil {
				return failSS("waiting for group %s to recover: %v", spec.ASGName, err)
			}
			known[id] = true
			expected[id] = true
			// Account one victim per loop iteration: the watch/join steps
			// strictly alternate, so a multi-instance storm is drained one
			// replacement at a time.
			sort.Strings(victims)
			delete(expected, victims[0])
			rep.NewInstances = append(rep.NewInstances, id)
			set, err := u.pollInService(ctx, spec)
			if err != nil {
				return failSS("listing group %s: %v", spec.ASGName, err)
			}
			// ssstep3: replacement joined.
			u.emit(spec.TaskID, "Replacement %s joined group %s. %d of %d instances in service.",
				id, spec.ASGName, len(set), spec.Size)
			u.emit(spec.TaskID, "Spot rebalance status: %d of %d instances in service", len(set), spec.Size)
			continue
		}
		if len(current) >= spec.Size && !u.clk.Now().Before(windowEnd) {
			break
		}
		if err := u.clk.Sleep(ctx, spec.PollInterval); err != nil {
			return err
		}
	}

	// ssstep4 / ssstep5: capacity held through the window.
	u.emit(spec.TaskID, "Capacity of group %s restored to %d instances", spec.ASGName, spec.Size)
	u.emit(spec.TaskID, "Spot rebalance of group %s completed", spec.ASGName)
	return nil
}

// listInstances snapshots the account's instance list, riding out
// retryable API errors.
func (u *Upgrader) listInstances(ctx context.Context, spec SpotRebalanceSpec) ([]simaws.Instance, error) {
	for attempt := 0; ; attempt++ {
		instances, err := u.cloud.DescribeInstances(ctx)
		if err == nil {
			return instances, nil
		}
		if !simaws.IsRetryable(err) || attempt >= 5 {
			return nil, err
		}
		if err := u.clk.Sleep(ctx, time.Second); err != nil {
			return nil, err
		}
	}
}

// pollInService snapshots the group's in-service set, tolerating
// retryable API errors by returning the last consistent read.
func (u *Upgrader) pollInService(ctx context.Context, spec SpotRebalanceSpec) (map[string]bool, error) {
	for attempt := 0; ; attempt++ {
		set, err := u.inServiceSet(ctx, spec.ASGName)
		if err == nil {
			return set, nil
		}
		if !simaws.IsRetryable(err) || attempt >= 5 {
			return nil, err
		}
		if err := u.clk.Sleep(ctx, time.Second); err != nil {
			return nil, err
		}
	}
}

// waitForReplacement polls until one instance not in known is in service.
func (u *Upgrader) waitForReplacement(ctx context.Context, spec SpotRebalanceSpec, known map[string]bool) (string, error) {
	deadline := u.clk.Now().Add(spec.WaitTimeout)
	for {
		if u.clk.Now().After(deadline) {
			return "", fmt.Errorf("%w after %v", ErrTimeout, spec.WaitTimeout)
		}
		if err := u.clk.Sleep(ctx, spec.PollInterval); err != nil {
			return "", err
		}
		instances, err := u.cloud.DescribeInstances(ctx)
		if err != nil {
			if simaws.IsRetryable(err) {
				continue
			}
			return "", err
		}
		var fresh []string
		for _, inst := range instances {
			if inst.ASGName == spec.ASGName && !known[inst.ID] && inst.State == simaws.StateInService {
				fresh = append(fresh, inst.ID)
			}
		}
		if len(fresh) > 0 {
			sort.Strings(fresh)
			return fresh[0], nil
		}
	}
}
