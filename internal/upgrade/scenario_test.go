package upgrade

import (
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
)

// replayAll feeds every captured operation line through a fresh
// conformance checker for the model and fails on any unfit verdict. This
// is stronger than per-line classification: it validates the control
// flow (loops, the spot bypass) the scenario plans' step scopes rely on.
func replayAll(t *testing.T, e *env, model *process.Model, instanceID string) {
	t.Helper()
	msgs := e.messages(t)
	if len(msgs) == 0 {
		t.Fatal("no logs captured")
	}
	checker := conformance.NewChecker(model)
	var last conformance.Result
	for _, raw := range msgs {
		ts, _, body, ok := logging.ParseOperationLine(raw)
		if !ok {
			t.Fatalf("unparseable line %q", raw)
		}
		last = checker.Check(instanceID, body, ts)
		if last.Verdict != conformance.VerdictFit {
			t.Fatalf("line %q: verdict = %s", body, last.Verdict)
		}
	}
	if !last.Completed {
		t.Errorf("trace did not reach the end state")
	}
}

func TestBlueGreenReplacesFleet(t *testing.T) {
	e := newEnv(t, 2)
	amiV2, err := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	if err != nil {
		t.Fatal(err)
	}
	up := NewUpgrader(e.cloud, e.bus)
	spec := BlueGreenSpec{
		TaskID:      "bg-task",
		BlueASGName: e.cluster.ASGName,
		ELBName:     e.cluster.ELBName,
		NewImageID:  amiV2,
		NewVersion:  "v2",
		KeyName:     e.cluster.KeyName,
		SGName:      e.cluster.SGName,
		Size:        2,
	}
	rep := up.RunBlueGreen(e.ctx, spec)
	if rep.Err != nil {
		t.Fatalf("blue/green failed: %v", rep.Err)
	}
	if len(rep.NewInstances) != 2 || len(rep.Replaced) != 2 {
		t.Fatalf("new %d, replaced %d", len(rep.NewInstances), len(rep.Replaced))
	}
	// The load balancer serves exactly the green fleet.
	elb, err := e.cloud.DescribeLoadBalancer(e.ctx, e.cluster.ELBName)
	if err != nil {
		t.Fatal(err)
	}
	green := map[string]bool{}
	for _, id := range rep.NewInstances {
		green[id] = true
	}
	if len(elb.Instances) != 2 {
		t.Fatalf("elb serves %d instances: %v", len(elb.Instances), elb.Instances)
	}
	for _, id := range elb.Instances {
		if !green[id] {
			t.Errorf("blue instance %s still registered", id)
		}
	}
	// Every green instance runs the new image; the blue group is gone.
	instances, err := e.cloud.DescribeInstances(e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range instances {
		if green[inst.ID] && inst.ImageID != amiV2 {
			t.Errorf("green instance %s runs %s", inst.ID, inst.ImageID)
		}
	}
	if _, err := e.cloud.DescribeAutoScalingGroup(e.ctx, e.cluster.ASGName); err == nil {
		t.Error("blue group still exists after retire")
	}
	replayAll(t, e, process.BlueGreenModel(), "bg-task")
}

func TestBlueGreenFailsWhenGreenCannotLaunch(t *testing.T) {
	e := newEnv(t, 1)
	amiV2, err := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", AppServices)
	if err != nil {
		t.Fatal(err)
	}
	up := NewUpgrader(e.cloud, e.bus)
	// Pull the AMI once the green launch configuration exists — after LC
	// validation, before the delayed scale-up launches the fleet.
	greenLC := "pm--asg-green-lc-" + amiV2
	go func() {
		for {
			if _, err := e.cloud.DescribeLaunchConfiguration(e.ctx, greenLC); err == nil {
				break
			}
			if e.cloud.Clock().Sleep(e.ctx, time.Second) != nil {
				return
			}
		}
		_ = e.cloud.DeregisterImage(e.ctx, amiV2)
	}()
	rep := up.RunBlueGreen(e.ctx, BlueGreenSpec{
		TaskID:      "bg-broken",
		BlueASGName: e.cluster.ASGName,
		ELBName:     e.cluster.ELBName,
		NewImageID:  amiV2,
		NewVersion:  "v2",
		KeyName:     e.cluster.KeyName,
		SGName:      e.cluster.SGName,
		Size:        1,
		LaunchGrace: 2 * time.Second,
		WaitTimeout: 30 * time.Second,
	})
	if rep.Err == nil {
		t.Fatal("blue/green succeeded without launchable AMI")
	}
	if !strings.Contains(rep.Err.Error(), "timed out") {
		t.Errorf("err = %v", rep.Err)
	}
	// The blue group must be untouched by the failed deploy.
	if _, err := e.cloud.DescribeAutoScalingGroup(e.ctx, e.cluster.ASGName); err != nil {
		t.Errorf("blue group gone after failed deploy: %v", err)
	}
}

func TestSpotRebalanceRecoversInterruptions(t *testing.T) {
	e := newEnv(t, 3)
	// Reclaim one instance shortly after the watch starts.
	go func() {
		_ = e.cloud.Clock().Sleep(e.ctx, 10*time.Second)
		instances, err := e.cloud.DescribeInstances(e.ctx)
		if err != nil {
			return
		}
		for _, inst := range instances {
			if inst.ASGName == e.cluster.ASGName {
				_ = e.cloud.TerminateInstance(e.ctx, inst.ID)
				return
			}
		}
	}()
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.RunSpotRebalance(e.ctx, SpotRebalanceSpec{
		TaskID:  "ss-task",
		ASGName: e.cluster.ASGName,
		ELBName: e.cluster.ELBName,
		Size:    3,
		Window:  90 * time.Second,
	})
	if rep.Err != nil {
		t.Fatalf("spot rebalance failed: %v", rep.Err)
	}
	if len(rep.NewInstances) != 1 {
		t.Fatalf("replacements = %d", len(rep.NewInstances))
	}
	set, err := up.inServiceSet(e.ctx, e.cluster.ASGName)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Errorf("in service = %d", len(set))
	}
	replayAll(t, e, process.SpotRebalanceModel(), "ss-task")
}

func TestSpotRebalanceCleanWatchConforms(t *testing.T) {
	e := newEnv(t, 2)
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.RunSpotRebalance(e.ctx, SpotRebalanceSpec{
		TaskID:  "ss-clean",
		ASGName: e.cluster.ASGName,
		ELBName: e.cluster.ELBName,
		Size:    2,
		Window:  30 * time.Second,
	})
	if rep.Err != nil {
		t.Fatalf("clean watch failed: %v", rep.Err)
	}
	if len(rep.NewInstances) != 0 {
		t.Errorf("clean watch replaced %d instances", len(rep.NewInstances))
	}
	// Zero loop iterations must still replay as a fit, completed trace
	// (the model's bypass flow).
	replayAll(t, e, process.SpotRebalanceModel(), "ss-clean")
}
