package upgrade

import (
	"context"
	"fmt"
	"sort"
	"time"

	"poddiagnosis/internal/simaws"
)

// BlueGreenSpec describes one blue/green deploy task: launch a complete
// green fleet next to the blue group, shift the shared load balancer to
// the green set, and retire the blue group.
type BlueGreenSpec struct {
	// TaskID is the process instance id.
	TaskID string
	// BlueASGName is the currently serving group.
	BlueASGName string
	// GreenASGName names the group to create. Defaults to BlueASGName +
	// "-green".
	GreenASGName string
	// ELBName is the load balancer shared by both groups.
	ELBName string
	// NewImageID is the AMI of the green fleet.
	NewImageID string
	// NewVersion is the application version of that AMI (log line only).
	NewVersion string
	// GreenLCName names the launch configuration to create; generated
	// from the green group and image when empty.
	GreenLCName string
	// KeyName and SGName are the shared supporting resources.
	KeyName string
	SGName  string
	// Size is the green fleet size.
	Size int
	// LaunchGrace separates green-group creation (desired 0) from the
	// scale-up to Size, mirroring Asgard's create-then-enable sequence.
	// Defaults to 10 s.
	LaunchGrace time.Duration
	// WaitTimeout bounds the wait for each green instance. Defaults to
	// 6 minutes.
	WaitTimeout time.Duration
	// CutoverTimeout bounds the wait for the load balancer to serve the
	// green set. Defaults to 3 minutes.
	CutoverTimeout time.Duration
	// PollInterval is the polling cadence. Defaults to 5 s.
	PollInterval time.Duration
}

func (s *BlueGreenSpec) withDefaults() BlueGreenSpec {
	out := *s
	if out.GreenASGName == "" {
		out.GreenASGName = out.BlueASGName + "-green"
	}
	if out.GreenLCName == "" {
		out.GreenLCName = fmt.Sprintf("%s-lc-%s", out.GreenASGName, out.NewImageID)
	}
	if out.LaunchGrace <= 0 {
		out.LaunchGrace = 10 * time.Second
	}
	if out.WaitTimeout <= 0 {
		out.WaitTimeout = 6 * time.Minute
	}
	if out.CutoverTimeout <= 0 {
		out.CutoverTimeout = 3 * time.Minute
	}
	if out.PollInterval <= 0 {
		out.PollInterval = 5 * time.Second
	}
	return out
}

// GreenCluster returns a Cluster describing the green resources the
// deploy creates, suitable for pointing fault injectors at the green
// group.
func (s BlueGreenSpec) GreenCluster(appName, version string) *Cluster {
	spec := s.withDefaults()
	return &Cluster{
		AppName: appName,
		Size:    spec.Size,
		ImageID: spec.NewImageID,
		Version: version,
		KeyName: spec.KeyName,
		SGName:  spec.SGName,
		LCName:  spec.GreenLCName,
		ELBName: spec.ELBName,
		ASGName: spec.GreenASGName,
	}
}

// RunBlueGreen executes the blue/green deploy: create the green launch
// configuration and group, scale the green fleet up after a short grace
// window, wait for every green instance to come in service, shift the
// load balancer to the green set, retire the blue group, and complete.
// The emitted vocabulary matches process.BlueGreenModel.
func (u *Upgrader) RunBlueGreen(ctx context.Context, spec BlueGreenSpec) *Report {
	spec = spec.withDefaults()
	rep := &Report{TaskID: spec.TaskID, Started: u.clk.Now()}
	rep.Err = u.runBlueGreen(ctx, spec, rep)
	rep.Finished = u.clk.Now()
	return rep
}

func (u *Upgrader) runBlueGreen(ctx context.Context, spec BlueGreenSpec, rep *Report) error {
	failBG := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		u.emit(spec.TaskID, "ERROR: %s", msg)
		return fmt.Errorf("blue/green %s: %s", spec.TaskID, msg)
	}

	// bgstep1: start.
	blue, err := u.inServiceSet(ctx, spec.BlueASGName)
	if err != nil {
		return failBG("listing blue group %s: %v", spec.BlueASGName, err)
	}
	u.emit(spec.TaskID, "Starting blue/green deploy of group %s to version %s", spec.GreenASGName, spec.NewVersion)

	// bgstep2: green launch configuration.
	if err := u.cloud.CreateLaunchConfiguration(ctx, simaws.LaunchConfig{
		Name:           spec.GreenLCName,
		ImageID:        spec.NewImageID,
		KeyName:        spec.KeyName,
		SecurityGroups: []string{spec.SGName},
		InstanceType:   "m1.small",
	}); err != nil {
		return failBG("creating green launch configuration %s: %v", spec.GreenLCName, err)
	}
	u.emit(spec.TaskID, "Created green launch configuration %s", spec.GreenLCName)

	// bgstep3: green group, attached to the shared load balancer. The
	// group is created empty and scaled up after the grace window, so a
	// concurrent configuration change lands before any launch consumes
	// the launch configuration (Asgard's create-then-enable sequence).
	if err := u.cloud.CreateAutoScalingGroup(ctx, simaws.ASG{
		Name:             spec.GreenASGName,
		LaunchConfigName: spec.GreenLCName,
		Min:              0,
		Max:              spec.Size * 3,
		Desired:          0,
		LoadBalancers:    []string{spec.ELBName},
	}); err != nil {
		return failBG("creating green group %s: %v", spec.GreenASGName, err)
	}
	u.emit(spec.TaskID, "Created green group %s behind %s", spec.GreenASGName, spec.ELBName)
	if err := u.clk.Sleep(ctx, spec.LaunchGrace); err != nil {
		return err
	}
	if err := u.cloud.SetDesiredCapacity(ctx, spec.GreenASGName, spec.Size); err != nil {
		return failBG("scaling green group %s to %d: %v", spec.GreenASGName, spec.Size, err)
	}

	// bgstep4 loop: the whole green fleet boots in parallel; log each
	// instance as it comes in service.
	green := make(map[string]bool)
	for len(green) < spec.Size {
		id, err := u.waitForGreenJoin(ctx, spec, green)
		if err != nil {
			return failBG("waiting for green group %s to grow: %v", spec.GreenASGName, err)
		}
		green[id] = true
		rep.NewInstances = append(rep.NewInstances, id)
		u.emit(spec.TaskID, "Instance %s joined green group %s. %d of %d instances in service.",
			id, spec.GreenASGName, len(green), spec.Size)
		u.emit(spec.TaskID, "Blue/green status: %d of %d green instances in service", len(green), spec.Size)
	}

	// bgstep5: cutover — deregister the blue set, then wait until the
	// load balancer serves every green instance.
	blueIDs := make([]string, 0, len(blue))
	for id := range blue {
		blueIDs = append(blueIDs, id)
	}
	sort.Strings(blueIDs)
	if len(blueIDs) > 0 {
		if err := u.cloud.DeregisterInstancesFromLoadBalancer(ctx, spec.ELBName, blueIDs...); err != nil {
			return failBG("deregistering blue instances from %s: %v", spec.ELBName, err)
		}
	}
	registered, err := u.waitForCutover(ctx, spec, green)
	if err != nil {
		return failBG("shifting load balancer %s to green group %s: %v", spec.ELBName, spec.GreenASGName, err)
	}
	u.emit(spec.TaskID, "Shifted load balancer %s to green group %s. %d of %d instances registered.",
		spec.ELBName, spec.GreenASGName, registered, spec.Size)

	// bgstep6: retire the blue group.
	if err := u.cloud.DeleteAutoScalingGroup(ctx, spec.BlueASGName); err != nil && !simaws.IsNotFound(err) {
		return failBG("retiring blue group %s: %v", spec.BlueASGName, err)
	}
	for id := range blue {
		rep.Replaced = append(rep.Replaced, id)
	}
	sort.Strings(rep.Replaced)
	u.emit(spec.TaskID, "Retired blue group %s", spec.BlueASGName)

	// bgstep7: completed.
	u.emit(spec.TaskID, "Blue/green deploy of group %s completed", spec.GreenASGName)
	return nil
}

// waitForGreenJoin polls until one new green instance is in service.
// Registration with the shared load balancer is deliberately NOT part of
// the join criterion: the balancer may be serving the blue set or be
// degraded, and that is the cutover step's problem (and POD's detection
// target), not the launch loop's.
func (u *Upgrader) waitForGreenJoin(ctx context.Context, spec BlueGreenSpec, known map[string]bool) (string, error) {
	deadline := u.clk.Now().Add(spec.WaitTimeout)
	for {
		if u.clk.Now().After(deadline) {
			return "", fmt.Errorf("%w after %v", ErrTimeout, spec.WaitTimeout)
		}
		if err := u.clk.Sleep(ctx, spec.PollInterval); err != nil {
			return "", err
		}
		instances, err := u.cloud.DescribeInstances(ctx)
		if err != nil {
			if simaws.IsRetryable(err) {
				continue
			}
			return "", err
		}
		var fresh []string
		for _, inst := range instances {
			if inst.ASGName == spec.GreenASGName && !known[inst.ID] && inst.State == simaws.StateInService {
				fresh = append(fresh, inst.ID)
			}
		}
		if len(fresh) > 0 {
			sort.Strings(fresh)
			return fresh[0], nil
		}
	}
}

// waitForCutover polls until the load balancer serves every green
// instance, returning the green registration count.
func (u *Upgrader) waitForCutover(ctx context.Context, spec BlueGreenSpec, green map[string]bool) (int, error) {
	deadline := u.clk.Now().Add(spec.CutoverTimeout)
	for {
		if u.clk.Now().After(deadline) {
			return 0, fmt.Errorf("timed out after %v waiting for %s to serve the green set", spec.CutoverTimeout, spec.ELBName)
		}
		elb, err := u.cloud.DescribeLoadBalancer(ctx, spec.ELBName)
		if err == nil {
			count := 0
			for _, id := range elb.Instances {
				if green[id] {
					count++
				}
			}
			if count >= len(green) {
				return count, nil
			}
		} else if !simaws.IsRetryable(err) && !simaws.IsNotFound(err) {
			return 0, err
		}
		if err := u.clk.Sleep(ctx, spec.PollInterval); err != nil {
			return 0, err
		}
	}
}
