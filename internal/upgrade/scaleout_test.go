package upgrade

import (
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
)

func TestScaleOutGrowsGroup(t *testing.T) {
	e := newEnv(t, 2)
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.RunScaleOut(e.ctx, ScaleOutSpec{
		TaskID:  "scale-out pm--asg",
		ASGName: e.cluster.ASGName,
		ELBName: e.cluster.ELBName,
		Target:  4,
	})
	if rep.Err != nil {
		t.Fatalf("scale-out failed: %v", rep.Err)
	}
	if len(rep.NewInstances) != 2 {
		t.Fatalf("new instances = %d", len(rep.NewInstances))
	}
	asg, err := e.cloud.DescribeAutoScalingGroup(e.ctx, e.cluster.ASGName)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Desired != 4 {
		t.Errorf("desired = %d", asg.Desired)
	}
}

func TestScaleOutLogsConformToModel(t *testing.T) {
	e := newEnv(t, 1)
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.RunScaleOut(e.ctx, ScaleOutSpec{
		TaskID:  "so-task",
		ASGName: e.cluster.ASGName,
		ELBName: e.cluster.ELBName,
		Target:  3,
	})
	if rep.Err != nil {
		t.Fatalf("scale-out failed: %v", rep.Err)
	}
	model := process.ScaleOutModel()
	msgs := e.messages(t)
	if len(msgs) == 0 {
		t.Fatal("no logs captured")
	}
	for _, raw := range msgs {
		_, _, body, ok := logging.ParseOperationLine(raw)
		if !ok {
			t.Fatalf("unparseable line %q", raw)
		}
		if _, found := model.Classify(body); !found {
			t.Errorf("line not classified by scale-out model: %q", body)
		}
	}
}

func TestScaleOutFailsWhenTargetUnreachable(t *testing.T) {
	e := newEnv(t, 1)
	// Break launches so the group can never grow.
	if err := e.cloud.DeregisterImage(e.ctx, e.cluster.ImageID); err != nil {
		t.Fatal(err)
	}
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.RunScaleOut(e.ctx, ScaleOutSpec{
		TaskID:      "so-broken",
		ASGName:     e.cluster.ASGName,
		ELBName:     e.cluster.ELBName,
		Target:      2,
		WaitTimeout: 30 * time.Second,
	})
	if rep.Err == nil {
		t.Fatal("scale-out succeeded without launchable AMI")
	}
	if !strings.Contains(rep.Err.Error(), "timed out") {
		t.Errorf("err = %v", rep.Err)
	}
}

func TestScaleOutBeyondMaxRejected(t *testing.T) {
	e := newEnv(t, 1)
	up := NewUpgrader(e.cloud, e.bus)
	rep := up.RunScaleOut(e.ctx, ScaleOutSpec{
		TaskID:  "so-max",
		ASGName: e.cluster.ASGName,
		Target:  1000,
	})
	if rep.Err == nil {
		t.Fatal("capacity beyond max accepted")
	}
}

func TestScaleOutModelShape(t *testing.T) {
	m := process.ScaleOutModel()
	if m.ID() != process.ScaleOutModelID {
		t.Errorf("id = %s", m.ID())
	}
	final := m.Node(process.NodeSOComplete)
	if final == nil || !final.Final {
		t.Error("completion activity not marked final")
	}
	// The spec text must parse against the default registry.
	if process.ScaleOutSpecText == "" {
		t.Fatal("no spec text")
	}
}
