package resilience

import (
	"context"
	"sync"
	"testing"
	"time"
)

// manualClock is a hand-advanced clock; Sleep advances it, so backoff
// waits are instantaneous and observable.
type manualClock struct {
	mu    sync.Mutex
	t     time.Time
	slept time.Duration
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.slept += d
	c.mu.Unlock()
	return nil
}

func (c *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.Now().Add(d)
	return ch
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *manualClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}

func TestRetryableClassification(t *testing.T) {
	for _, s := range []string{
		"RequestLimitExceeded: request limit exceeded for account",
		"Throttling: rate exceeded",
		"ServiceUnavailable: try again",
		"consistentapi: API timeout after 20s",
		"context deadline exceeded",
		"dial tcp 127.0.0.1:8077: connection refused",
	} {
		if !Retryable(s) {
			t.Errorf("Retryable(%q) = false", s)
		}
	}
	for _, s := range []string{"", "NotFound: no such group", "validation error"} {
		if Retryable(s) {
			t.Errorf("Retryable(%q) = true", s)
		}
	}
}

func TestDoRetriesUntilOK(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{})
	calls := 0
	out := x.Do(context.Background(), "check", func(context.Context) Verdict {
		calls++
		if calls < 3 {
			return VerdictRetryable
		}
		return VerdictOK
	})
	if out.Attempts != 3 || out.Retries != 2 || out.ShortCircuited {
		t.Fatalf("outcome = %+v", out)
	}
	if clk.Slept() == 0 {
		t.Error("no backoff slept between retries")
	}
	if st := x.Snapshot(); len(st.Breakers) != 1 || st.Breakers[0].State != BreakerClosed {
		t.Errorf("breaker state = %+v", st.Breakers)
	}
}

func TestDoStopsAtMaxAttempts(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{MaxAttempts: 2, FailureThreshold: 100})
	calls := 0
	out := x.Do(context.Background(), "check", func(context.Context) Verdict {
		calls++
		return VerdictRetryable
	})
	if calls != 2 || out.Attempts != 2 {
		t.Fatalf("calls = %d, outcome = %+v", calls, out)
	}
}

func TestBreakerOpensThenHalfOpenProbeCloses(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{MaxAttempts: 1, FailureThreshold: 3, Cooldown: 30 * time.Second})
	fail := func(context.Context) Verdict { return VerdictRetryable }
	for i := 0; i < 3; i++ {
		x.Do(context.Background(), "check", fail)
	}
	if st := x.Snapshot(); st.Breakers[0].State != BreakerOpen {
		t.Fatalf("breaker = %+v after threshold failures", st.Breakers[0])
	}
	// Open inside the cooldown: short-circuited without running the call.
	out := x.Do(context.Background(), "check", fail)
	if !out.ShortCircuited || out.Attempts != 0 {
		t.Fatalf("outcome during cooldown = %+v", out)
	}
	if !x.Open("check") {
		t.Error("Open = false during cooldown")
	}
	// After the cooldown a single probe is admitted; success closes.
	clk.Advance(31 * time.Second)
	if x.Open("check") {
		t.Error("Open = true after cooldown elapsed")
	}
	out = x.Do(context.Background(), "check", func(context.Context) Verdict { return VerdictOK })
	if out.ShortCircuited || out.Attempts != 1 {
		t.Fatalf("probe outcome = %+v", out)
	}
	if st := x.Snapshot(); st.Breakers[0].State != BreakerClosed {
		t.Errorf("breaker = %+v after successful probe", st.Breakers[0])
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{MaxAttempts: 1, FailureThreshold: 2, Cooldown: 10 * time.Second})
	fail := func(context.Context) Verdict { return VerdictRetryable }
	x.Do(context.Background(), "check", fail)
	x.Do(context.Background(), "check", fail)
	clk.Advance(11 * time.Second)
	x.Do(context.Background(), "check", fail) // the probe fails
	st := x.Snapshot()
	if st.Breakers[0].State != BreakerOpen {
		t.Fatalf("breaker = %+v after failed probe", st.Breakers[0])
	}
	// The cooldown restarts from the probe failure.
	if x.Do(context.Background(), "check", fail); !x.Open("check") {
		t.Error("breaker not holding after reopen")
	}
}

func TestOpenDoesNotConsumeProbeSlot(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{MaxAttempts: 1, FailureThreshold: 1, Cooldown: 10 * time.Second})
	x.Do(context.Background(), "check", func(context.Context) Verdict { return VerdictRetryable })
	clk.Advance(11 * time.Second)
	// Read-only checks after the cooldown never claim the half-open probe.
	for i := 0; i < 3; i++ {
		if x.Open("check") {
			t.Fatal("Open = true after cooldown")
		}
	}
	out := x.Do(context.Background(), "check", func(context.Context) Verdict { return VerdictOK })
	if out.ShortCircuited {
		t.Fatalf("probe was consumed by Open: %+v", out)
	}
}

func TestFatalNeitherRetriesNorTrips(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{FailureThreshold: 1})
	calls := 0
	out := x.Do(context.Background(), "check", func(context.Context) Verdict {
		calls++
		return VerdictFatal
	})
	if calls != 1 || out.Attempts != 1 || out.Retries != 0 {
		t.Fatalf("calls = %d, outcome = %+v", calls, out)
	}
	if st := x.Snapshot(); st.Breakers[0].State != BreakerClosed {
		t.Errorf("fatal verdict moved the breaker: %+v", st.Breakers[0])
	}
}

func TestRetryBudgetBoundsRetries(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{
		MaxAttempts: 5, RetryBudget: 3, BudgetWindow: 5 * time.Minute,
		FailureThreshold: 100,
	})
	calls := 0
	fail := func(context.Context) Verdict { calls++; return VerdictRetryable }
	// First call: 1 try + 3 budgeted retries, then the budget is dry.
	out := x.Do(context.Background(), "a", fail)
	if out.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (budget exhausted)", out.Attempts)
	}
	// Budget dry: the next failing call gets no retries at all.
	calls = 0
	x.Do(context.Background(), "b", fail)
	if calls != 1 {
		t.Fatalf("calls = %d with dry budget, want 1", calls)
	}
	if st := x.Snapshot(); st.BudgetRemaining != 0 {
		t.Errorf("budget remaining = %d", st.BudgetRemaining)
	}
	// The window rolls over and the budget refills.
	clk.Advance(6 * time.Minute)
	calls = 0
	x.Do(context.Background(), "c", fail)
	if calls <= 1 {
		t.Fatalf("calls = %d after budget refill, want retries", calls)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{MaxAttempts: 10})
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	out := x.Do(ctx, "check", func(context.Context) Verdict {
		calls++
		cancel()
		return VerdictRetryable
	})
	if calls != 1 || out.Attempts != 1 {
		t.Fatalf("calls = %d, outcome = %+v after cancel", calls, out)
	}
}

func TestSnapshotSorted(t *testing.T) {
	clk := newManualClock()
	x := NewExecutor(clk, Options{})
	ok := func(context.Context) Verdict { return VerdictOK }
	for _, key := range []string{"zeta", "alpha", "mid"} {
		x.Do(context.Background(), key, ok)
	}
	st := x.Snapshot()
	if len(st.Breakers) != 3 {
		t.Fatalf("breakers = %d", len(st.Breakers))
	}
	for i := 1; i < len(st.Breakers); i++ {
		if st.Breakers[i-1].Key > st.Breakers[i].Key {
			t.Fatalf("breakers unsorted: %+v", st.Breakers)
		}
	}
}
