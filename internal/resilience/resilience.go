// Package resilience hardens the monitoring plane's own cloud calls. The
// paper pitches POD-Diagnosis as non-intrusive (§III): it observes only
// logs and cloud APIs — but that makes the diagnoser a cloud API client
// itself, subject to the same RequestLimitExceeded storms, timeouts and
// latency spikes it diagnoses in the operation plane. This package wraps
// diagnosis-test evaluations in:
//
//   - jittered exponential backoff with a bounded retry budget for
//     throttle/timeout-class errors,
//   - a per-test circuit breaker with half-open probing on the shared
//     (possibly simulated) clock, so a persistently failing test stops
//     burning budget and API quota, and
//   - context propagation: every sleep honours the caller's deadline.
//
// A breaker-open call is not an error and not a fault signal: it surfaces
// as a "result unknown" outcome the fault-tree walk continues past.
package resilience

import (
	"context"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/obs"
)

// Resilience metrics.
var (
	mRetries = obs.Default.CounterVec("pod_resilience_retries_total",
		"Diagnosis-test retries after retryable failures, by test key.", "key")
	mShortCircuits = obs.Default.Counter("pod_resilience_short_circuits_total",
		"Calls answered 'unknown' without attempting because the breaker was open.")
	mTransitions = obs.Default.CounterVec("pod_resilience_breaker_transitions_total",
		"Circuit breaker state transitions, by new state.", "to")
	mOpenBreakers = obs.Default.Gauge("pod_resilience_breakers_open",
		"Circuit breakers currently open or half-open.")
	mBudgetSpent = obs.Default.Counter("pod_resilience_retry_budget_spent_total",
		"Retries charged against the shared retry budget.")
)

// Options tune an Executor. The zero value gets sensible defaults.
type Options struct {
	// MaxAttempts bounds the attempts of one call (first try included).
	// Defaults to 3.
	MaxAttempts int
	// InitialBackoff is the first retry delay; it doubles per retry up to
	// MaxBackoff, with full jitter. Defaults to 200ms / 5s.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// RetryBudget bounds total retries across all calls — a safety valve
	// so a storm cannot multiply the monitoring plane's own API load.
	// It refills fully every BudgetWindow. Defaults to 64 per 5 minutes.
	RetryBudget  int
	BudgetWindow time.Duration
	// FailureThreshold is how many consecutive retryable-class failures
	// open a test's breaker. Defaults to 3.
	FailureThreshold int
	// Cooldown is how long an open breaker waits before admitting one
	// half-open probe. Defaults to 30s.
	Cooldown time.Duration
	// Seed fixes the jitter source for reproducible runs; 0 derives one.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.InitialBackoff <= 0 {
		o.InitialBackoff = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 64
	}
	if o.BudgetWindow <= 0 {
		o.BudgetWindow = 5 * time.Minute
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Verdict classifies one attempt of a guarded call.
type Verdict int

const (
	// VerdictOK means the call produced a usable answer (pass or fail —
	// an assertion failing is an answer, not an infrastructure failure).
	VerdictOK Verdict = iota
	// VerdictRetryable means a throttle/timeout-class infrastructure
	// failure worth backing off and retrying.
	VerdictRetryable
	// VerdictFatal means an error retrying cannot fix (bad parameters,
	// unknown check). It neither retries nor trips the breaker.
	VerdictFatal
)

// Retryable classifies an error string as throttle/timeout-class. The
// monitoring plane renders errors to text at the assertion boundary, so
// classification is by the well-known code substrings.
func Retryable(errText string) bool {
	if errText == "" {
		return false
	}
	for _, marker := range []string{
		"RequestLimitExceeded",
		"Throttling",
		"ServiceUnavailable",
		"API timeout",
		"deadline exceeded",
		"connection refused",
	} {
		if strings.Contains(errText, marker) {
			return true
		}
	}
	return false
}

// BreakerState is a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed admits every call.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen short-circuits every call until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen admits a single probe; its outcome closes or
	// re-opens the breaker.
	BreakerHalfOpen BreakerState = "half-open"
)

// breaker is one test's circuit breaker. Guarded by the Executor's mutex.
type breaker struct {
	state    BreakerState
	failures int       // consecutive retryable-class failures
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	shorted  uint64    // calls short-circuited while open
}

// Outcome summarizes one guarded call.
type Outcome struct {
	// Attempts is how many times the call ran (0 when short-circuited).
	Attempts int
	// Retries is Attempts minus one, floored at zero.
	Retries int
	// ShortCircuited means the breaker was open and the call never ran.
	ShortCircuited bool
}

// Labels renders the outcome as annotations for evidence timelines and
// spans: attempts, retries, and the breaker disposition.
func (o Outcome) Labels() map[string]string {
	breaker := "closed"
	if o.ShortCircuited {
		breaker = "open"
	}
	return map[string]string{
		"attempts": strconv.Itoa(o.Attempts),
		"retries":  strconv.Itoa(o.Retries),
		"breaker":  breaker,
	}
}

// Executor runs calls under retry, budget and breaker policies. It is
// safe for concurrent use.
type Executor struct {
	clk  clock.Clock
	opts Options

	mu          sync.Mutex
	rng         *rand.Rand
	breakers    map[string]*breaker
	budgetLeft  int
	budgetReset time.Time
}

// NewExecutor returns an Executor on the given clock.
func NewExecutor(clk clock.Clock, opts Options) *Executor {
	opts = opts.withDefaults()
	return &Executor{
		clk:        clk,
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		breakers:   make(map[string]*breaker),
		budgetLeft: opts.RetryBudget,
	}
}

// Options returns the executor's effective configuration.
func (x *Executor) Options() Options { return x.opts }

// Do runs call under the policies, keyed by the test's identity (breakers
// are per key). The call is invoked with ctx and must honour its
// cancellation; between attempts the executor sleeps a jittered
// exponential backoff on the clock, also bounded by ctx.
func (x *Executor) Do(ctx context.Context, key string, call func(context.Context) Verdict) Outcome {
	if !x.admit(key) {
		mShortCircuits.Inc()
		return Outcome{ShortCircuited: true}
	}
	var out Outcome
	backoff := x.opts.InitialBackoff
	for {
		out.Attempts++
		v := call(ctx)
		switch v {
		case VerdictOK:
			x.settle(key, true)
			return out
		case VerdictFatal:
			// Not an infrastructure failure: release any half-open probe
			// without moving the breaker.
			x.release(key)
			return out
		}
		// Retryable-class failure.
		x.settle(key, false)
		if out.Attempts >= x.opts.MaxAttempts || ctx.Err() != nil || !x.takeBudget() {
			return out
		}
		if err := x.clk.Sleep(ctx, x.jitter(backoff)); err != nil {
			return out
		}
		backoff *= 2
		if backoff > x.opts.MaxBackoff {
			backoff = x.opts.MaxBackoff
		}
		if !x.admit(key) {
			// The breaker opened on the failure we are retrying past (or a
			// concurrent call's); stop burning attempts.
			out.ShortCircuited = true
			return out
		}
		out.Retries++
		mRetries.With(key).Inc()
	}
}

// Open reports whether a call for key would be short-circuited right now:
// the breaker is open inside its cooldown, or a half-open probe is already
// in flight. A true answer is itself recorded as a short-circuit (the
// caller is expected to skip the call), but the breaker is not advanced —
// in particular it never consumes the half-open probe slot.
func (x *Executor) Open(key string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	br, ok := x.breakers[key]
	if !ok {
		return false
	}
	blocked := (br.state == BreakerOpen && x.clk.Since(br.openedAt) < x.opts.Cooldown) ||
		(br.state == BreakerHalfOpen && br.probing)
	if blocked {
		br.shorted++
		mShortCircuits.Inc()
	}
	return blocked
}

// admit consults (and advances) the key's breaker: closed admits, open
// admits nothing until the cooldown elapses, half-open admits one probe.
func (x *Executor) admit(key string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	br := x.breakerLocked(key)
	switch br.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if x.clk.Since(br.openedAt) < x.opts.Cooldown {
			br.shorted++
			return false
		}
		br.state = BreakerHalfOpen
		br.probing = true
		mTransitions.With(string(BreakerHalfOpen)).Inc()
		return true
	default: // half-open
		if br.probing {
			br.shorted++
			return false
		}
		br.probing = true
		return true
	}
}

// settle records an attempt outcome against the key's breaker.
func (x *Executor) settle(key string, ok bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	br := x.breakerLocked(key)
	wasTracked := br.state != BreakerClosed
	br.probing = false
	if ok {
		br.failures = 0
		if br.state != BreakerClosed {
			br.state = BreakerClosed
			mTransitions.With(string(BreakerClosed)).Inc()
			mOpenBreakers.Dec()
		}
		return
	}
	br.failures++
	if br.state == BreakerHalfOpen || br.failures >= x.opts.FailureThreshold {
		if br.state != BreakerOpen {
			br.state = BreakerOpen
			mTransitions.With(string(BreakerOpen)).Inc()
			if !wasTracked {
				mOpenBreakers.Inc()
			}
		}
		br.openedAt = x.clk.Now()
	}
}

// release clears a half-open probe slot without judging the breaker
// (fatal outcomes are not infrastructure signals).
func (x *Executor) release(key string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.breakerLocked(key).probing = false
}

func (x *Executor) breakerLocked(key string) *breaker {
	br, ok := x.breakers[key]
	if !ok {
		br = &breaker{state: BreakerClosed}
		x.breakers[key] = br
	}
	return br
}

// takeBudget charges one retry against the shared budget, refilling it
// when the window rolled over.
func (x *Executor) takeBudget() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	now := x.clk.Now()
	if x.budgetReset.IsZero() || now.Sub(x.budgetReset) >= x.opts.BudgetWindow {
		x.budgetReset = now
		x.budgetLeft = x.opts.RetryBudget
	}
	if x.budgetLeft <= 0 {
		return false
	}
	x.budgetLeft--
	mBudgetSpent.Inc()
	return true
}

// jitter draws a full-jitter delay in (0, d].
func (x *Executor) jitter(d time.Duration) time.Duration {
	x.mu.Lock()
	f := x.rng.Float64()
	x.mu.Unlock()
	j := time.Duration(f * float64(d))
	if j <= 0 {
		j = time.Millisecond
	}
	return j
}

// BreakerStatus is the serializable view of one breaker.
type BreakerStatus struct {
	Key                 string       `json:"key"`
	State               BreakerState `json:"state"`
	ConsecutiveFailures int          `json:"consecutiveFailures"`
	ShortCircuited      uint64       `json:"shortCircuited"`
	OpenedAt            *time.Time   `json:"openedAt,omitempty"`
}

// Status is the serializable view of an Executor (/diagnosis/resilience).
type Status struct {
	MaxAttempts      int             `json:"maxAttempts"`
	InitialBackoff   time.Duration   `json:"initialBackoff"`
	MaxBackoff       time.Duration   `json:"maxBackoff"`
	FailureThreshold int             `json:"failureThreshold"`
	Cooldown         time.Duration   `json:"cooldown"`
	RetryBudget      int             `json:"retryBudget"`
	BudgetRemaining  int             `json:"budgetRemaining"`
	Breakers         []BreakerStatus `json:"breakers,omitempty"`
}

// Snapshot reports configuration plus every breaker's state, sorted by
// key for stable output.
func (x *Executor) Snapshot() Status {
	x.mu.Lock()
	defer x.mu.Unlock()
	st := Status{
		MaxAttempts:      x.opts.MaxAttempts,
		InitialBackoff:   x.opts.InitialBackoff,
		MaxBackoff:       x.opts.MaxBackoff,
		FailureThreshold: x.opts.FailureThreshold,
		Cooldown:         x.opts.Cooldown,
		RetryBudget:      x.opts.RetryBudget,
		BudgetRemaining:  x.budgetLeft,
	}
	for key, br := range x.breakers {
		bs := BreakerStatus{
			Key: key, State: br.state,
			ConsecutiveFailures: br.failures,
			ShortCircuited:      br.shorted,
		}
		if br.state != BreakerClosed {
			at := br.openedAt
			bs.OpenedAt = &at
		}
		st.Breakers = append(st.Breakers, bs)
	}
	sortBreakers(st.Breakers)
	return st
}

func sortBreakers(bs []BreakerStatus) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Key < bs[j-1].Key; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
