package mining

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// syntheticTrace produces the Asgard-style bodies of one clean upgrade
// replacing n instances, with realistic timing.
func syntheticTrace(instance string, n int, start time.Time) []Line {
	ts := start
	adv := func(d time.Duration) time.Time { ts = ts.Add(d); return ts }
	var out []Line
	add := func(body string, gap time.Duration) {
		out = append(out, Line{Timestamp: adv(gap), InstanceID: instance, Body: body})
	}
	add(fmt.Sprintf("Starting rolling upgrade of group pm--asg to image ami-%s", instance), 0)
	add(fmt.Sprintf("Created launch configuration pm--asg-lc-ami-%s with image ami-%s", instance, instance), 2*time.Second)
	add(fmt.Sprintf("Updated group pm--asg to launch configuration pm--asg-lc-ami-%s", instance), time.Second)
	add(fmt.Sprintf("Sorted %d instances for replacement", n), 2*time.Second)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("i-%04d%s", i, instance)
		add(fmt.Sprintf("Removed and deregistered instance %s from ELB pm-elb", id), 3*time.Second)
		add(fmt.Sprintf("Terminating old instance %s", id), 2*time.Second)
		add("Waiting for group pm--asg to start a new instance", time.Second)
		add(fmt.Sprintf("Instance pm on i-9%03d%s is ready for use. %d of %d instance relaunches done.", i, instance, i+1, n), 95*time.Second)
		add(fmt.Sprintf("Status: %d of %d instances replaced", i+1, n), time.Second)
	}
	add("Rolling upgrade task completed", 2*time.Second)
	return out
}

func syntheticLog(traces, n int) []Line {
	var lines []Line
	base := time.Date(2013, 10, 24, 11, 0, 0, 0, time.UTC)
	for t := 0; t < traces; t++ {
		lines = append(lines, syntheticTrace(fmt.Sprintf("%04d", t), n, base.Add(time.Duration(t)*time.Hour))...)
	}
	return lines
}

func TestMaskReplacesVariableTokens(t *testing.T) {
	cases := []struct{ in, wantGone string }{
		{"Instance pm on i-7df34041 is ready for use. 4 of 4 instance relaunches done.", "i-7df34041"},
		{"Starting rolling upgrade of group pm--asg to image ami-750c9e4f", "ami-750c9e4f"},
		{"Created launch configuration pm--asg-lc-ami-1 with image ami-1", "pm--asg-lc-ami-1"},
		{"Sorted 20 instances for replacement", "20"},
	}
	for _, tc := range cases {
		masked := Mask(tc.in)
		if strings.Contains(masked, tc.wantGone) {
			t.Errorf("Mask(%q) = %q still contains %q", tc.in, masked, tc.wantGone)
		}
		if !strings.Contains(masked, maskToken) {
			t.Errorf("Mask(%q) = %q has no mask token", tc.in, masked)
		}
	}
}

func TestTokenDistanceProperties(t *testing.T) {
	if d := tokenDistance("a b c", "a b c"); d != 0 {
		t.Errorf("identical distance = %f", d)
	}
	if d := tokenDistance("a b c", "x y z"); d != 1 {
		t.Errorf("disjoint distance = %f", d)
	}
	if d := tokenDistance("a b c d", "a b x d"); d != 0.25 {
		t.Errorf("one-substitution distance = %f", d)
	}
	// Property: symmetric and within [0,1].
	f := func(a, b string) bool {
		d1, d2 := tokenDistance(a, b), tokenDistance(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMineDiscoversRollingUpgradeShape(t *testing.T) {
	lines := syntheticLog(20, 4)
	res, err := NewMiner().Mine(lines, "mined-upgrade")
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != 20 {
		t.Errorf("traces = %d", res.Traces)
	}
	// The 10 distinct activities of the upgrade (start, create LC, update
	// group, sort, deregister, terminate, wait, ready, status, completed)
	// should come out as ~10 clusters.
	if len(res.Clusters) < 9 || len(res.Clusters) > 12 {
		t.Errorf("cluster count = %d: %+v", len(res.Clusters), res.Clusters)
	}
	// The replacement loop must be visible as a cycle.
	if !res.HasLoop() {
		t.Error("no loop discovered")
	}
	// Single start and end activity.
	if len(res.StartActivities) != 1 || len(res.EndActivities) != 1 {
		t.Errorf("starts=%v ends=%v", res.StartActivities, res.EndActivities)
	}
}

func TestMinedModelClassifiesItsInput(t *testing.T) {
	lines := syntheticLog(5, 3)
	res, err := NewMiner().Mine(lines, "m")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if _, ok := res.Model.Classify(l.Body); !ok {
			t.Errorf("mined model cannot classify %q", l.Body)
		}
	}
}

func TestMinedModelMatchesGroundTruthMapping(t *testing.T) {
	// Every mined cluster regex should match lines of exactly one
	// ground-truth activity.
	lines := syntheticLog(10, 4)
	res, err := NewMiner().Mine(lines, "m")
	if err != nil {
		t.Fatal(err)
	}
	truth := process.RollingUpgradeModel()
	mapping := make(map[string]map[string]bool) // mined name -> truth ids
	for _, l := range lines {
		mined, ok1 := res.Model.Classify(l.Body)
		gt, ok2 := truth.Classify(l.Body)
		if !ok1 || !ok2 {
			continue
		}
		if mapping[mined.ID] == nil {
			mapping[mined.ID] = make(map[string]bool)
		}
		mapping[mined.ID][gt.ID] = true
	}
	if len(mapping) < 9 {
		t.Fatalf("only %d mined activities mapped", len(mapping))
	}
	for mined, gts := range mapping {
		if len(gts) != 1 {
			t.Errorf("mined activity %s maps to %d truth activities: %v", mined, len(gts), gts)
		}
	}
}

func TestMineTimingData(t *testing.T) {
	lines := syntheticLog(10, 3)
	res, err := NewMiner().Mine(lines, "m")
	if err != nil {
		t.Fatal(err)
	}
	// The wait-for-ASG step precedes a ~95s gap; its node must carry a
	// large mean duration.
	var waiting *process.Node
	for _, n := range res.Model.Activities() {
		if strings.Contains(n.Name, "waiting") || strings.Contains(n.Name, "Waiting") {
			waiting = n
		}
	}
	if waiting == nil {
		t.Fatal("no waiting activity discovered")
	}
	if waiting.MeanDuration < 60*time.Second {
		t.Errorf("waiting mean duration = %v", waiting.MeanDuration)
	}
}

func TestMineEmptyInput(t *testing.T) {
	if _, err := NewMiner().Mine(nil, "m"); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDeriveNameAndRegex(t *testing.T) {
	name := deriveName("Starting rolling upgrade of group <*> to image <*>")
	if name != "starting-rolling-upgrade-group" {
		t.Errorf("name = %q", name)
	}
	re := regexFromTemplate("Sorted <*> instances for replacement")
	if !regexpMatch(re, "Sorted 17 instances for replacement") {
		t.Errorf("regex %q does not match", re)
	}
	if regexpMatch(re, "Terminating old instance i-1") {
		t.Errorf("regex %q over-matches", re)
	}
}

func regexpMatch(pattern, s string) bool {
	re, err := regexp.Compile(pattern)
	return err == nil && re.MatchString(s)
}

func TestRenderDFG(t *testing.T) {
	lines := syntheticLog(3, 2)
	res, _ := NewMiner().Mine(lines, "m")
	out := res.RenderDFG()
	if !strings.Contains(out, "directly-follows graph (3 traces)") {
		t.Errorf("render = %q", out)
	}
	if !strings.Contains(out, "->") {
		t.Error("no edges rendered")
	}
}

// TestMineFromRealUpgradeLogs runs actual upgrades on the simulator and
// mines the model from the captured logs — the full §III.A pipeline end to
// end.
func TestMineFromRealUpgradeLogs(t *testing.T) {
	clk := clock.NewScaled(1500, time.Date(2013, 10, 24, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	defer bus.Close()
	profile := simaws.FastProfile()
	profile.BootTime = clock.Fixed(30 * time.Second)
	profile.TickInterval = time.Second
	cloud := simaws.New(clk, profile, simaws.WithSeed(3), simaws.WithBus(bus))
	cloud.Start()
	defer cloud.Stop()

	sink := logging.NewMemorySink()
	sub := bus.Subscribe(8192, logging.TypeFilter(logging.TypeOperation))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			sink.Write(e)
		}
	}()

	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", 3, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	up := upgrade.NewUpgrader(cloud, bus)
	for i := 0; i < 3; i++ {
		ami, err := cloud.RegisterImage(ctx, fmt.Sprintf("pm-v%d", i+2), fmt.Sprintf("v%d", i+2), upgrade.AppServices)
		if err != nil {
			t.Fatal(err)
		}
		rep := up.Run(ctx, cluster.UpgradeSpec(fmt.Sprintf("task-%d", i), ami))
		if rep.Err != nil {
			t.Fatalf("upgrade %d: %v", i, rep.Err)
		}
	}
	sub.Cancel()
	<-done

	var lines []Line
	for _, ev := range sink.Events() {
		_, task, body, ok := logging.ParseOperationLine(ev.Message)
		if !ok {
			continue
		}
		lines = append(lines, Line{Timestamp: ev.Timestamp, InstanceID: task, Body: body})
	}
	if len(lines) < 30 {
		t.Fatalf("only %d lines captured", len(lines))
	}
	res, err := NewMiner().Mine(lines, "mined-from-sim")
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != 3 {
		t.Errorf("traces = %d", res.Traces)
	}
	if !res.HasLoop() {
		t.Error("loop not discovered from real logs")
	}
	if len(res.Clusters) < 9 {
		t.Errorf("clusters = %d", len(res.Clusters))
	}
}
