// Package mining implements the offline process discovery of §III.A: from
// raw operation logs of successful runs it (1) masks variable tokens,
// (2) clusters log lines by a normalized token edit distance, (3) derives
// a regular expression (transformation rule) per cluster, (4) tags the
// lines and groups them into traces per process instance, (5) builds a
// directly-follows graph with frequencies and timing statistics, and
// (6) synthesizes a process model consumable by conformance checking.
//
// This replaces the paper's Disco + manual pre-processing pipeline with a
// self-contained implementation.
package mining

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"poddiagnosis/internal/process"
)

// Line is one input log line.
type Line struct {
	// Timestamp orders events within a trace.
	Timestamp time.Time
	// InstanceID groups lines into traces (one per process instance).
	InstanceID string
	// Body is the log message (without timestamp/task prefixes).
	Body string
}

// Cluster is a group of similar log lines.
type Cluster struct {
	// Name is the derived activity name.
	Name string `json:"name"`
	// Template is the masked representative line.
	Template string `json:"template"`
	// Regex matches lines of the cluster.
	Regex string `json:"regex"`
	// Count is the number of lines in the cluster.
	Count int `json:"count"`
	// Examples holds up to three raw member lines.
	Examples []string `json:"examples,omitempty"`
}

// EdgeStat describes one directly-follows relation.
type EdgeStat struct {
	// Count is how many times the relation was observed.
	Count int `json:"count"`
	// MeanGap is the mean time between the two events.
	MeanGap time.Duration `json:"meanGap"`
}

// Result is the outcome of mining.
type Result struct {
	// Model is the synthesized process model.
	Model *process.Model `json:"model"`
	// Clusters are the discovered activities.
	Clusters []Cluster `json:"clusters"`
	// DFG is the directly-follows graph over cluster names.
	DFG map[string]map[string]EdgeStat `json:"dfg"`
	// Traces is the number of process instances mined.
	Traces int `json:"traces"`
	// StartActivities and EndActivities are the observed trace
	// boundaries with their frequencies.
	StartActivities map[string]int `json:"startActivities"`
	EndActivities   map[string]int `json:"endActivities"`
}

// Miner discovers process models from logs.
type Miner struct {
	// Threshold is the normalized token-edit-distance below which two
	// templates join the same cluster (default 0.35).
	Threshold float64
	// MinClusterShare drops clusters seen in fewer than this share of
	// traces (noise suppression; default 0.0 keeps everything).
	MinClusterShare float64
}

// NewMiner returns a Miner with default settings.
func NewMiner() *Miner {
	return &Miner{Threshold: 0.35}
}

// maskPatterns replace variable parts of log lines before clustering.
var maskPatterns = []*regexp.Regexp{
	// Compound resource names (launch configurations, groups, ELBs) are
	// masked before their embedded AMI/instance ids, and without \b
	// anchors: word boundaries do not exist next to mask tokens.
	regexp.MustCompile(`\S*-lc-\S*`),
	regexp.MustCompile(`\S+--asg\S*`),
	regexp.MustCompile(`\S+-elb`),
	regexp.MustCompile(`\bi-[0-9a-fA-F]+\b`),
	regexp.MustCompile(`\bami-[0-9a-zA-Z-]+\b`),
	regexp.MustCompile(`\b\d+\b`),
}

const maskToken = "<*>"

// Mask replaces variable tokens with the mask token.
func Mask(body string) string {
	out := body
	for _, re := range maskPatterns {
		out = re.ReplaceAllString(out, maskToken)
	}
	return out
}

// tokenDistance is the normalized Levenshtein distance over whitespace
// tokens: 0 means identical, 1 means entirely different.
func tokenDistance(a, b string) float64 {
	ta, tb := strings.Fields(a), strings.Fields(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 0
	}
	n, m := len(ta), len(tb)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if ta[i-1] == tb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	maxLen := n
	if m > maxLen {
		maxLen = m
	}
	return float64(prev[m]) / float64(maxLen)
}

func minInt(vals ...int) int {
	out := vals[0]
	for _, v := range vals[1:] {
		if v < out {
			out = v
		}
	}
	return out
}

// nameStopwords are dropped when deriving activity names from templates.
var nameStopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "for": true, "to": true,
	"with": true, "from": true, "and": true, "is": true, "on": true,
	"in": true, "into": true, maskToken: true,
}

// deriveName condenses a template into a kebab-case activity name.
func deriveName(template string) string {
	var words []string
	for _, tok := range strings.Fields(template) {
		tok = strings.Trim(strings.ToLower(tok), ".,:;")
		if tok == "" || nameStopwords[tok] || strings.Contains(tok, maskToken) {
			continue
		}
		words = append(words, tok)
		if len(words) == 4 {
			break
		}
	}
	if len(words) == 0 {
		return "activity"
	}
	return strings.Join(words, "-")
}

// regexFromTemplate converts a masked template into a matching regular
// expression.
func regexFromTemplate(template string) string {
	parts := strings.Fields(template)
	out := make([]string, len(parts))
	for i, p := range parts {
		if strings.Contains(p, maskToken) {
			// The token may carry punctuation around the mask.
			out[i] = regexp.QuoteMeta(p)
			out[i] = strings.ReplaceAll(out[i], regexp.QuoteMeta(maskToken), `\S+`)
		} else {
			out[i] = regexp.QuoteMeta(p)
		}
	}
	return strings.Join(out, `\s+`)
}

// Mine runs the full discovery pipeline.
func (m *Miner) Mine(lines []Line, modelID string) (*Result, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("mining: no input lines")
	}
	threshold := m.Threshold
	if threshold <= 0 {
		threshold = 0.35
	}

	// 1+2: mask and cluster.
	type clusterState struct {
		template string
		count    int
		examples []string
	}
	var clusters []*clusterState
	assign := make([]int, len(lines))
	for i, line := range lines {
		masked := Mask(line.Body)
		best, bestDist := -1, threshold
		for ci, c := range clusters {
			if d := tokenDistance(masked, c.template); d < bestDist {
				best, bestDist = ci, d
			}
		}
		if best == -1 {
			clusters = append(clusters, &clusterState{template: masked})
			best = len(clusters) - 1
		}
		c := clusters[best]
		c.count++
		if len(c.examples) < 3 {
			c.examples = append(c.examples, line.Body)
		}
		assign[i] = best
	}

	// 3: derive names (deduplicated) and regexes.
	names := make([]string, len(clusters))
	used := make(map[string]int)
	for i, c := range clusters {
		name := deriveName(c.template)
		used[name]++
		if used[name] > 1 {
			name = fmt.Sprintf("%s-%d", name, used[name])
		}
		names[i] = name
	}

	// 4: build traces ordered by timestamp per instance.
	type event struct {
		at      time.Time
		cluster int
	}
	traces := make(map[string][]event)
	for i, line := range lines {
		traces[line.InstanceID] = append(traces[line.InstanceID], event{at: line.Timestamp, cluster: assign[i]})
	}
	for id := range traces {
		tr := traces[id]
		sort.SliceStable(tr, func(i, j int) bool { return tr[i].at.Before(tr[j].at) })
		traces[id] = tr
	}

	// 5: directly-follows graph with timing.
	dfg := make(map[string]map[string]*edgeAcc)
	starts := make(map[string]int)
	ends := make(map[string]int)
	for _, tr := range traces {
		if len(tr) == 0 {
			continue
		}
		starts[names[tr[0].cluster]]++
		ends[names[tr[len(tr)-1].cluster]]++
		for i := 0; i+1 < len(tr); i++ {
			from, to := names[tr[i].cluster], names[tr[i+1].cluster]
			if dfg[from] == nil {
				dfg[from] = make(map[string]*edgeAcc)
			}
			acc := dfg[from][to]
			if acc == nil {
				acc = &edgeAcc{}
				dfg[from][to] = acc
			}
			acc.count++
			acc.total += tr[i+1].at.Sub(tr[i].at)
		}
	}

	// 6: synthesize the model. Activities connect directly (XOR semantics
	// are implicit in token replay); a start event precedes the observed
	// start activities and an end event follows the observed final ones.
	builder := process.NewBuilder(modelID, "mined: "+modelID)
	builder.Start("start")
	builder.End("end")
	durations := meanOutgoing(dfg)
	for i, c := range clusters {
		opts := []process.NodeOption{
			process.WithName(c.template),
			process.WithPatterns(regexFromTemplate(c.template)),
			process.WithStep(fmt.Sprintf("step%d", i+1)),
		}
		if d, ok := durations[names[i]]; ok {
			opts = append(opts, process.WithMeanDuration(d))
		}
		builder.Activity(names[i], opts...)
	}
	for s := range starts {
		builder.Flow("start", s)
	}
	for e := range ends {
		builder.Flow(e, "end")
	}
	for from, tos := range dfg {
		for to := range tos {
			builder.Flow(from, to)
		}
	}
	model, err := builder.Build()
	if err != nil {
		return nil, fmt.Errorf("mining: synthesized model invalid: %w", err)
	}

	// Package the result.
	res := &Result{
		Model:           model,
		DFG:             make(map[string]map[string]EdgeStat, len(dfg)),
		Traces:          len(traces),
		StartActivities: starts,
		EndActivities:   ends,
	}
	for i, c := range clusters {
		res.Clusters = append(res.Clusters, Cluster{
			Name:     names[i],
			Template: c.template,
			Regex:    regexFromTemplate(c.template),
			Count:    c.count,
			Examples: c.examples,
		})
	}
	for from, tos := range dfg {
		res.DFG[from] = make(map[string]EdgeStat, len(tos))
		for to, acc := range tos {
			res.DFG[from][to] = EdgeStat{
				Count:   acc.count,
				MeanGap: acc.total / time.Duration(acc.count),
			}
		}
	}
	return res, nil
}

type edgeAcc struct {
	count int
	total time.Duration
}

// meanOutgoing computes, per activity, the mean gap to its successors —
// the "time data" annotation of Figure 2.
func meanOutgoing(dfg map[string]map[string]*edgeAcc) map[string]time.Duration {
	out := make(map[string]time.Duration, len(dfg))
	for from, tos := range dfg {
		var total time.Duration
		var n int
		for _, acc := range tos {
			total += acc.total
			n += acc.count
		}
		if n > 0 {
			out[from] = total / time.Duration(n)
		}
	}
	return out
}

// HasLoop reports whether the directly-follows graph contains a cycle
// (e.g. the rolling upgrade replacement loop).
func (r *Result) HasLoop() bool {
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	state := make(map[string]int)
	var visit func(n string) bool
	visit = func(n string) bool {
		state[n] = active
		for to := range r.DFG[n] {
			switch state[to] {
			case active:
				return true
			case unseen:
				if visit(to) {
					return true
				}
			}
		}
		state[n] = done
		return false
	}
	for n := range r.DFG {
		if state[n] == unseen {
			if visit(n) {
				return true
			}
		}
	}
	return false
}

// RenderDFG prints the directly-follows graph, most frequent edges first.
func (r *Result) RenderDFG() string {
	type edge struct {
		from, to string
		stat     EdgeStat
	}
	var edges []edge
	for from, tos := range r.DFG {
		for to, stat := range tos {
			edges = append(edges, edge{from, to, stat})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].stat.Count != edges[j].stat.Count {
			return edges[i].stat.Count > edges[j].stat.Count
		}
		return edges[i].from+edges[i].to < edges[j].from+edges[j].to
	})
	var b strings.Builder
	fmt.Fprintf(&b, "directly-follows graph (%d traces)\n", r.Traces)
	for _, e := range edges {
		fmt.Fprintf(&b, "  %-40s -> %-40s x%-4d mean %s\n", e.from, e.to, e.stat.Count, e.stat.MeanGap.Round(time.Millisecond))
	}
	return b.String()
}

// LinesFromEvents converts annotated operation events into mining input.
func LinesFromEvents(events []Event) []Line {
	out := make([]Line, 0, len(events))
	for _, e := range events {
		out = append(out, Line(e))
	}
	return out
}

// Event mirrors Line for callers that prefer the explicit name.
type Event = Line
