package logstore

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/logging"
)

func ev(typ, instanceID, msg string, ts time.Time, tags ...string) logging.Event {
	fields := map[string]string{}
	if instanceID != "" {
		fields["taskid"] = instanceID
	}
	return logging.Event{Timestamp: ts, Type: typ, Fields: fields, Tags: tags, Message: msg}
}

func TestStoreSelectByTypeInstanceTagSince(t *testing.T) {
	s := NewStore()
	t0 := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	s.Write(ev(logging.TypeOperation, "a", "one", t0))
	s.Write(ev(logging.TypeOperation, "b", "two", t0.Add(time.Minute), "step4"))
	s.Write(ev(logging.TypeAssertion, "a", "three", t0.Add(2*time.Minute)))
	s.Write(ev(logging.TypeCloud, "", "four", t0.Add(3*time.Minute)))

	if got := s.Select(Query{Type: logging.TypeOperation}); len(got) != 2 {
		t.Errorf("by type: %d", len(got))
	}
	if got := s.Select(Query{InstanceID: "a"}); len(got) != 2 {
		t.Errorf("by instance: %d", len(got))
	}
	if got := s.Select(Query{Tag: "step4"}); len(got) != 1 || got[0].Message != "two" {
		t.Errorf("by tag: %v", got)
	}
	if got := s.Select(Query{Since: t0.Add(2 * time.Minute)}); len(got) != 2 {
		t.Errorf("since: %d", len(got))
	}
	if got := s.Select(Query{Type: logging.TypeOperation, InstanceID: "b", Tag: "step4"}); len(got) != 1 {
		t.Errorf("combined: %d", len(got))
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSelectOrdersByTimestamp(t *testing.T) {
	s := NewStore()
	t0 := time.Unix(1000, 0)
	s.Write(ev(logging.TypeOperation, "a", "late", t0.Add(time.Hour)))
	s.Write(ev(logging.TypeOperation, "a", "early", t0))
	got := s.Select(Query{InstanceID: "a"})
	if len(got) != 2 || got[0].Message != "early" {
		t.Fatalf("order = %v", got)
	}
}

func TestInstanceIDsUsesBothFieldNames(t *testing.T) {
	s := NewStore()
	s.Write(logging.Event{Fields: map[string]string{"taskid": "x"}})
	s.Write(logging.Event{Fields: map[string]string{"processinstanceid": "y"}})
	s.Write(logging.Event{Fields: map[string]string{"taskid": "x"}})
	ids := s.InstanceIDs()
	if len(ids) != 2 || ids[0] != "x" || ids[1] != "y" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestCentralProcessorStoresAndTriggers(t *testing.T) {
	store := NewStore()
	var failures []string
	cp := NewCentralProcessor(store, func(e logging.Event) { failures = append(failures, e.Message) })

	cp.Process(ev(logging.TypeCloud, "", "ASG g activity: Launching a new EC2 instance (Failed) InvalidAMIID.NotFound", time.Now()))
	// mark status field like the cloud does
	failedEv := ev(logging.TypeCloud, "", "activity failed", time.Now())
	failedEv.Fields["status"] = "Failed"
	cp.Process(failedEv)
	cp.Process(ev(logging.TypeCloud, "", "instance i-1 is now in-service", time.Now()))
	cp.Process(ev(logging.TypeOperation, "t", "ERROR: something broke", time.Now()))
	cp.Process(ev(logging.TypeAssertion, "t", "ASG g has 4 instances.", time.Now()))

	if store.Len() != 5 {
		t.Errorf("stored %d", store.Len())
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCentralProcessorDisruptionIndicator(t *testing.T) {
	var n int
	cp := NewCentralProcessor(NewStore(), func(logging.Event) { n++ })
	cp.Process(ev(logging.TypeCloud, "", "ELB service disruption started: missing ELB state data", time.Now()))
	if n != 1 {
		t.Fatalf("disruption not flagged: %d", n)
	}
}

func TestCentralProcessorStartStop(t *testing.T) {
	bus := logging.NewBus()
	defer bus.Close()
	store := NewStore()
	var n int
	cp := NewCentralProcessor(store, func(logging.Event) { n++ })
	sub := bus.Subscribe(64, nil)
	cp.Start(sub)
	bus.Publish(ev(logging.TypeOperation, "t", "ERROR: boom", time.Now()))
	bus.Publish(ev(logging.TypeOperation, "t", "fine", time.Now()))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && store.Len() < 2 {
		time.Sleep(time.Millisecond)
	}
	cp.Stop()
	if store.Len() != 2 || n != 1 {
		t.Fatalf("stored=%d failures=%d", store.Len(), n)
	}
}

func TestIsFailureIndicatorNegativeCases(t *testing.T) {
	cases := []logging.Event{
		{Type: logging.TypeAssertion, Message: "ERROR-looking assertion text"},
		{Type: logging.TypeCloud, Message: "instance i-1 terminated"},
		{Type: logging.TypeOperation, Message: "Instance pm on i-1 is ready for use. 1 of 4 instance relaunches done."},
	}
	for _, e := range cases {
		if IsFailureIndicator(e) {
			t.Errorf("false positive on %q", e.Message)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	t0 := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	s.Write(ev(logging.TypeOperation, "t", "first line", t0, "step1"))
	s.Write(ev(logging.TypeAssertion, "t", "ASG g has 4 instances.", t0.Add(time.Minute)))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d events", back.Len())
	}
	got := back.All()
	if got[0].Message != "first line" || !got[0].HasTag("step1") {
		t.Errorf("event 0 = %+v", got[0])
	}
	if !got[1].Timestamp.Equal(t0.Add(time.Minute)) {
		t.Errorf("timestamp lost: %v", got[1].Timestamp)
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := NewStore()
	s.Write(ev(logging.TypeOperation, "t", "x", time.Now()))
	path := t.TempDir() + "/store.jsonl"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 {
		t.Fatalf("loaded %d", back.Len())
	}
	if _, err := LoadFile(t.TempDir() + "/missing.jsonl"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsMalformedLine(t *testing.T) {
	if _, err := Load(strings.NewReader("{\"@message\":\"ok\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	s, err := Load(strings.NewReader("\n\n"))
	if err != nil || s.Len() != 0 {
		t.Fatalf("blank-line load: %v, %d", err, s.Len())
	}
}
