package logstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"poddiagnosis/internal/logging"
)

// Save writes the store as JSON lines (the Logstash v1 wire format, one
// event per line), so a campaign's merged logs can be archived and
// analyzed offline later.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range s.All() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("logstore: save: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("logstore: save: %w", err)
	}
	return nil
}

// SaveFile writes the store to the named file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("logstore: save: %w", err)
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads JSON-lines events into a new store. Blank lines are skipped;
// malformed lines abort with an error naming the line number.
func Load(r io.Reader) (*Store, error) {
	s := NewStore()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var e logging.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("logstore: load line %d: %w", lineNo, err)
		}
		s.Write(e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("logstore: load: %w", err)
	}
	return s, nil
}

// LoadFile reads a store from the named JSON-lines file.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logstore: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}
