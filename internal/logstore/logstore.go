// Package logstore implements the central log storage and the central log
// processor of the paper's architecture (Figure 1): annotated logs from
// every source — operation nodes, the cloud, assertion evaluation,
// conformance checking, and diagnosis — are merged into one queryable
// store; the central processor scans incoming events for failure
// indicators from sources the local processors do not watch (e.g. failed
// cloud scaling activities) and triggers error diagnosis.
package logstore

import (
	"sort"
	"strings"
	"sync"
	"time"

	"poddiagnosis/internal/logging"
)

// Store is the central log storage: an append-only, queryable event log.
// It is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	events []logging.Event
}

var _ logging.Sink = (*Store)(nil)

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Write implements logging.Sink.
func (s *Store) Write(e logging.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Len returns the number of stored events.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// All returns a copy of every event in arrival order.
func (s *Store) All() []logging.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]logging.Event, len(s.events))
	copy(out, s.events)
	return out
}

// Query returns events matching every non-zero criterion.
type Query struct {
	// Type filters by event type.
	Type string
	// InstanceID filters by process instance (taskid/processinstanceid
	// field).
	InstanceID string
	// Tag filters by tag presence.
	Tag string
	// Since filters by timestamp (inclusive).
	Since time.Time
}

// Select returns matching events ordered by timestamp.
func (s *Store) Select(q Query) []logging.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []logging.Event
	for _, e := range s.events {
		if q.Type != "" && e.Type != q.Type {
			continue
		}
		if q.InstanceID != "" {
			id := e.Field("processinstanceid")
			if id == "" {
				id = e.Field("taskid")
			}
			if id != q.InstanceID {
				continue
			}
		}
		if q.Tag != "" && !e.HasTag(q.Tag) {
			continue
		}
		if !q.Since.IsZero() && e.Timestamp.Before(q.Since) {
			continue
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp.Before(out[j].Timestamp) })
	return out
}

// InstanceIDs returns the distinct process instance ids seen.
func (s *Store) InstanceIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	for _, e := range s.events {
		id := e.Field("processinstanceid")
		if id == "" {
			id = e.Field("taskid")
		}
		if id != "" {
			seen[id] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CentralProcessor scans events arriving at the central store for failure
// indicators and invokes OnFailure for each. It watches sources the local
// processors do not: cloud infrastructure logs with failed activities and
// error markers in any merged stream.
type CentralProcessor struct {
	store     *Store
	onFailure func(logging.Event)

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCentralProcessor returns a processor feeding the store and invoking
// onFailure for each failure indicator (may be nil to only store).
func NewCentralProcessor(store *Store, onFailure func(logging.Event)) *CentralProcessor {
	return &CentralProcessor{store: store, onFailure: onFailure, stop: make(chan struct{})}
}

// Start consumes the subscription until Stop.
func (c *CentralProcessor) Start(sub *logging.Subscription) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case <-c.stop:
				return
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				c.Process(ev)
			}
		}
	}()
}

// Stop halts the processing goroutine.
func (c *CentralProcessor) Stop() {
	close(c.stop)
	c.wg.Wait()
}

// Process stores one event and fires the failure callback when the event
// indicates a failure or exception (§III.B: "a central log processor grabs
// the logs ... and triggers the error diagnosis when it finds a failure or
// exception indicated by the log line").
func (c *CentralProcessor) Process(ev logging.Event) {
	c.store.Write(ev)
	if c.onFailure == nil {
		return
	}
	if IsFailureIndicator(ev) {
		c.onFailure(ev)
	}
}

// IsFailureIndicator reports whether the event signals a failure from a
// non-POD source worth diagnosing.
func IsFailureIndicator(ev logging.Event) bool {
	switch ev.Type {
	case logging.TypeCloud:
		if ev.Field("status") == "Failed" {
			return true
		}
		return strings.Contains(ev.Message, "disruption started")
	case logging.TypeOperation:
		return strings.Contains(ev.Message, "ERROR") ||
			strings.Contains(ev.Message, "Exception")
	default:
		return false
	}
}
