package logging

import (
	"sync"
	"sync/atomic"

	"poddiagnosis/internal/obs"
)

// Bus metrics: the full-buffer eviction in Publish used to lose events
// with zero signal; both totals now land in the default registry. Drops
// are labelled by subscriber so pipeline loss is attributable to the
// consumer that fell behind rather than a single anonymous total.
var (
	mPublished = obs.Default.Counter("pod_logbus_published_total",
		"Log events published to the bus.")
	mDropped = obs.Default.CounterVec("pod_logbus_dropped_total",
		"Log events evicted from full subscriber buffers.", "subscriber")
	mSubscribers = obs.Default.Gauge("pod_logbus_subscribers",
		"Active bus subscriptions.")
)

// anonSubscriber labels drops on subscriptions created without a name.
const anonSubscriber = "anon"

// Bus is an in-process publish/subscribe channel for log events. It stands
// in for the log shipping fabric (Logstash agents forwarding to a central
// collector) of the paper's deployment. Publishing never blocks the
// producer: slow subscribers drop their oldest pending events, mirroring
// the lossy nature of real log shipping under backpressure.
//
// The bus also stamps each event with a monotone per-source sequence
// number (Event.Seq) on first publication, giving downstream consumers —
// in particular the conformance reorder/dedup buffer — enough structure to
// detect duplication, reordering and loss in the shipping fabric.
type Bus struct {
	mu      sync.Mutex
	subs    map[int]*Subscription
	nextID  int
	closed  bool
	dropped atomic.Uint64
	seq     map[seqKey]uint64 // per (Source, SourceHost, Type) publication counter
	cause   uint64            // bus-wide causality id counter
}

// seqKey is the sequencing granularity. A struct key hashes the components
// directly; the "src|host|type" concatenation it replaces allocated a
// fresh string per published event.
type seqKey struct {
	src, host, typ string
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*Subscription), seq: make(map[seqKey]uint64)}
}

// Subscription receives events published to a Bus. Receive from C until it
// is closed; call Cancel when done.
type Subscription struct {
	// C delivers published events. It is closed when the subscription is
	// cancelled or the bus is closed.
	C <-chan Event

	id      int
	name    string
	ch      chan Event
	bus     *Bus
	filter  func(Event) bool
	once    sync.Once
	dropped atomic.Uint64
	mDrops  *obs.Counter
}

// Subscribe registers a new anonymous subscriber with the given channel
// buffer. A nil filter receives every event. Buffer must be at least 1.
func (b *Bus) Subscribe(buffer int, filter func(Event) bool) *Subscription {
	return b.SubscribeNamed(anonSubscriber, buffer, filter)
}

// SubscribeNamed registers a subscriber whose dropped-event count is
// exported under the given name (the "subscriber" label of
// pod_logbus_dropped_total). A nil filter receives every event. Buffer
// must be at least 1.
func (b *Bus) SubscribeNamed(name string, buffer int, filter func(Event) bool) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	if name == "" {
		name = anonSubscriber
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan Event, buffer)
	sub := &Subscription{ch: ch, C: ch, bus: b, filter: filter, name: name, mDrops: mDropped.With(name)}
	if b.closed {
		close(ch)
		return sub
	}
	sub.id = b.nextID
	b.nextID++
	b.subs[sub.id] = sub
	mSubscribers.Inc()
	return sub
}

// Name returns the subscriber name used for drop attribution.
func (s *Subscription) Name() string { return s.name }

// Dropped returns how many events were evicted from this subscription's
// buffer since it was created.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel removes the subscription and closes its channel. It is safe to
// call more than once.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.bus.mu.Lock()
		defer s.bus.mu.Unlock()
		if _, ok := s.bus.subs[s.id]; ok {
			delete(s.bus.subs, s.id)
			close(s.ch)
			mSubscribers.Dec()
		}
	})
}

// drop records one lost event against both the bus total and the
// subscription it was destined for. Called with the bus lock held.
func (s *Subscription) drop() {
	s.bus.dropped.Add(1)
	s.dropped.Add(1)
	s.mDrops.Inc()
}

// Publish delivers the event to every matching subscriber. If a
// subscriber's buffer is full its oldest pending event is dropped to make
// room, so publishers are never blocked by slow consumers. Delivery makes
// bounded progress per subscriber — at most one eviction and two send
// attempts — so a consumer racing Publish by draining its channel can
// never make Publish spin while it holds the bus lock; in that rare race
// the new event is dropped (and counted) instead.
//
// Events with Seq == 0 are stamped with the next sequence number for
// their (Source, SourceHost, Type) triple — per type, because
// subscriptions filter by type and a type-filtered consumer must see a
// dense stream; events that already carry a sequence number (replays,
// chaos duplicates) keep it. Events with CauseID == 0 are likewise
// stamped with a bus-unique causality id; republished copies keep the
// original, so every duplicate of one line shares one cause.
//
//podlint:hotpath budget=0
func (b *Bus) Publish(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if e.Seq == 0 {
		key := seqKey{src: e.Source, host: e.SourceHost, typ: e.Type}
		b.seq[key]++
		e.Seq = b.seq[key]
	}
	if e.CauseID == 0 {
		b.cause++
		e.CauseID = b.cause
	}
	mPublished.Inc()
	for _, sub := range b.subs {
		if sub.filter != nil && !sub.filter(e) {
			continue
		}
		select {
		case sub.ch <- e:
			continue
		default:
		}
		// Buffer full: evict the oldest pending event and retry once. The
		// eviction or the send can each lose a race with a concurrent
		// consumer receive; either way exactly one event is dropped.
		select {
		case <-sub.ch:
			sub.drop()
		default:
		}
		select {
		case sub.ch <- e:
		default:
			sub.drop()
		}
	}
}

// Dropped returns the total number of events evicted from full subscriber
// buffers since the bus was created — the signal slow subscribers used to
// lose silently.
func (b *Bus) Dropped() uint64 { return b.dropped.Load() }

// Close closes the bus and every subscription channel. Publish becomes a
// no-op afterwards.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		close(sub.ch)
		mSubscribers.Dec()
	}
}

// TypeFilter returns a subscription filter matching any of the given
// event types.
func TypeFilter(types ...string) func(Event) bool {
	set := make(map[string]struct{}, len(types))
	for _, t := range types {
		set[t] = struct{}{}
	}
	return func(e Event) bool {
		_, ok := set[e.Type]
		return ok
	}
}
