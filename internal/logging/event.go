// Package logging defines the structured log event model shared by every
// component of the POD-Diagnosis stack, together with an in-process log bus
// and sinks.
//
// Events follow the Logstash v1 wire shape used in the paper (§IV): a raw
// @message plus @source, @tags, @fields, @timestamp, @source_host and
// @type. The local log processor enriches raw operation-log events with
// process-context tags and fields before forwarding them to the central
// log storage.
package logging

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Well-known event types (the @type field).
const (
	TypeOperation   = "asgard"      // operation node (upgrade orchestrator) logs
	TypeCloud       = "cloud"       // simulated cloud infrastructure logs
	TypeAssertion   = "assertion"   // assertion evaluation results
	TypeConformance = "conformance" // conformance checking results
	TypeDiagnosis   = "diagnosis"   // error diagnosis traces
	TypeTimer       = "timer"       // timer-originated trigger records
)

// Event is a single structured log record.
type Event struct {
	// Timestamp is when the underlying line was produced, in clock time.
	Timestamp time.Time `json:"@timestamp"`
	// Source is the originating log file, e.g. "asgard.log".
	Source string `json:"@source"`
	// SourceHost is the host that produced the line.
	SourceHost string `json:"@source_host"`
	// Type is the event family, one of the Type* constants.
	Type string `json:"@type"`
	// Tags carries process-context annotations such as the activity name,
	// step id, and conformance verdicts.
	Tags []string `json:"@tags"`
	// Fields carries extracted key/value context, e.g. amiid, asgid,
	// instanceid, processinstanceid, stepid.
	Fields map[string]string `json:"@fields"`
	// Message is the original raw log line.
	Message string `json:"@message"`
	// Seq is a monotone per-source sequence number stamped by the Bus the
	// first time the event is published (a duplicate republication keeps
	// the original number, which is what makes duplicates detectable).
	// Zero means the event never crossed a bus. The sequencing key is
	// (Source, SourceHost, Type) — one Logstash agent per log file, with
	// the type folded in so type-filtered subscribers see dense streams.
	Seq uint64 `json:"@seq,omitempty"`
	// CauseID is a bus-unique causality identifier stamped the first time
	// the event is published (a duplicate republication keeps the original
	// id, so every copy of one underlying line shares one cause). The
	// flight recorder uses it to anchor evidence chains at raw log events
	// across the reorder buffer and chaos-injected duplication.
	CauseID uint64 `json:"@cause,omitempty"`
}

// Clone returns a deep copy of the event, so that pipeline stages can
// annotate without aliasing the caller's slices and maps.
func (e Event) Clone() Event {
	out := e
	if e.Tags != nil {
		out.Tags = make([]string, len(e.Tags))
		copy(out.Tags, e.Tags)
	}
	if e.Fields != nil {
		out.Fields = make(map[string]string, len(e.Fields))
		for k, v := range e.Fields {
			out.Fields[k] = v
		}
	}
	return out
}

// WithTag returns a copy of the event with tag appended (if not present).
func (e Event) WithTag(tag string) Event {
	if e.HasTag(tag) {
		return e
	}
	out := e.Clone()
	out.Tags = append(out.Tags, tag)
	return out
}

// WithField returns a copy of the event with the field set.
func (e Event) WithField(key, value string) Event {
	out := e.Clone()
	if out.Fields == nil {
		out.Fields = make(map[string]string, 1)
	}
	out.Fields[key] = value
	return out
}

// SetField sets the field in place. It is the hot-path counterpart of
// WithField: after one Clone, a pipeline stage may mutate its private copy
// without paying a further full-event copy per annotation.
func (e *Event) SetField(key, value string) {
	if e.Fields == nil {
		e.Fields = make(map[string]string, 8)
	}
	e.Fields[key] = value
}

// AddTag appends the tag in place if not already present — the hot-path
// counterpart of WithTag, for use on a Clone the caller owns.
func (e *Event) AddTag(tag string) {
	if !e.HasTag(tag) {
		e.Tags = append(e.Tags, tag)
	}
}

// HasTag reports whether the event carries tag.
func (e Event) HasTag(tag string) bool {
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Field returns the value of the named field, or "" when absent.
func (e Event) Field(key string) string { return e.Fields[key] }

// MarshalJSON implements json.Marshaler with deterministic field ordering
// for the @fields map (sorted keys), which keeps golden-file tests stable.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event // avoid recursion
	a := alias(e)
	if a.Tags == nil {
		a.Tags = []string{}
	}
	if a.Fields == nil {
		a.Fields = map[string]string{}
	}
	return json.Marshal(a)
}

// String renders the event compactly for debugging: timestamp, type, tags
// and message.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Timestamp.Format("2006-01-02 15:04:05,000"))
	b.WriteString(" [")
	b.WriteString(e.Type)
	b.WriteString("]")
	if len(e.Tags) > 0 {
		fmt.Fprintf(&b, " %v", e.Tags)
	}
	if len(e.Fields) > 0 {
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%s", k, e.Fields[k])
		}
		b.WriteString("}")
	}
	b.WriteString(" ")
	b.WriteString(e.Message)
	return b.String()
}
