package logging

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func sampleEvent() Event {
	return Event{
		Timestamp:  time.Date(2013, 10, 24, 11, 41, 48, 312e6, time.UTC),
		Source:     "asgard.log",
		SourceHost: "NICTA.local",
		Type:       TypeOperation,
		Tags:       []string{"push", "asg", "step4"},
		Fields:     map[string]string{"amiid": "ami-750c9e4f", "asgid": "pm--asg"},
		Message:    "Instance pm on i-7df34041 is ready for use.",
	}
}

func TestEventCloneIsDeep(t *testing.T) {
	e := sampleEvent()
	c := e.Clone()
	c.Tags[0] = "changed"
	c.Fields["amiid"] = "changed"
	if e.Tags[0] != "push" {
		t.Error("Clone aliases Tags")
	}
	if e.Fields["amiid"] != "ami-750c9e4f" {
		t.Error("Clone aliases Fields")
	}
}

func TestEventWithTagIdempotent(t *testing.T) {
	e := sampleEvent().WithTag("x").WithTag("x")
	n := 0
	for _, tag := range e.Tags {
		if tag == "x" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("WithTag added tag %d times", n)
	}
}

func TestEventWithFieldDoesNotMutateOriginal(t *testing.T) {
	e := sampleEvent()
	_ = e.WithField("instanceid", "i-123")
	if _, ok := e.Fields["instanceid"]; ok {
		t.Fatal("WithField mutated receiver")
	}
}

func TestEventWithFieldOnNilMap(t *testing.T) {
	e := Event{}
	out := e.WithField("k", "v")
	if out.Field("k") != "v" {
		t.Fatal("WithField on zero event failed")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	e := sampleEvent()
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"@timestamp", "@source", "@tags", "@fields", "@message", "@type", "@source_host"} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("marshaled event missing %s", key)
		}
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Message != e.Message || back.Fields["amiid"] != "ami-750c9e4f" {
		t.Fatal("round trip lost data")
	}
}

func TestEventJSONEmptyCollections(t *testing.T) {
	data, err := json.Marshal(Event{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"@tags":[]`)) {
		t.Error("nil tags should marshal as []")
	}
	if !bytes.Contains(data, []byte(`"@fields":{}`)) {
		t.Error("nil fields should marshal as {}")
	}
}

func TestEventStringContainsParts(t *testing.T) {
	s := sampleEvent().String()
	for _, want := range []string{"asgard", "step4", "amiid=ami-750c9e4f", "ready for use"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestBusDeliversToMatchingSubscribers(t *testing.T) {
	b := NewBus()
	defer b.Close()
	all := b.Subscribe(8, nil)
	ops := b.Subscribe(8, TypeFilter(TypeOperation))
	b.Publish(Event{Type: TypeOperation, Message: "a"})
	b.Publish(Event{Type: TypeCloud, Message: "b"})

	if e := <-all.C; e.Message != "a" {
		t.Fatalf("all sub first event = %q", e.Message)
	}
	if e := <-all.C; e.Message != "b" {
		t.Fatalf("all sub second event = %q", e.Message)
	}
	if e := <-ops.C; e.Message != "a" {
		t.Fatalf("ops sub event = %q", e.Message)
	}
	select {
	case e := <-ops.C:
		t.Fatalf("ops sub received unexpected %q", e.Message)
	default:
	}
}

func TestBusDropsOldestWhenFull(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub := b.Subscribe(2, nil)
	for i := 0; i < 5; i++ {
		b.Publish(Event{Message: string(rune('a' + i))})
	}
	// Only the two newest should remain.
	if e := <-sub.C; e.Message != "d" {
		t.Fatalf("first retained = %q, want d", e.Message)
	}
	if e := <-sub.C; e.Message != "e" {
		t.Fatalf("second retained = %q, want e", e.Message)
	}
	if got := b.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
}

func TestBusDroppedCountsAcrossSubscribers(t *testing.T) {
	b := NewBus()
	defer b.Close()
	slow := b.Subscribe(1, nil)
	fast := b.Subscribe(16, nil)
	for i := 0; i < 4; i++ {
		b.Publish(Event{Message: "x"})
	}
	// The slow subscriber evicted 3; the fast one kept everything.
	if got := b.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if len(fast.C) != 4 || len(slow.C) != 1 {
		t.Fatalf("buffers = fast:%d slow:%d, want 4/1", len(fast.C), len(slow.C))
	}
}

func TestBusPerSubscriberDropAccounting(t *testing.T) {
	b := NewBus()
	defer b.Close()
	slow := b.SubscribeNamed("pipeline", 1, nil)
	fast := b.SubscribeNamed("central", 16, nil)
	for i := 0; i < 4; i++ {
		b.Publish(Event{Message: "x"})
	}
	if slow.Name() != "pipeline" || fast.Name() != "central" {
		t.Fatalf("names = %q/%q", slow.Name(), fast.Name())
	}
	if got := slow.Dropped(); got != 3 {
		t.Fatalf("slow.Dropped() = %d, want 3", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast.Dropped() = %d, want 0", got)
	}
	// The bus-wide count is the sum over subscribers.
	if got := b.Dropped(); got != 3 {
		t.Fatalf("bus Dropped() = %d, want 3", got)
	}
}

func TestBusStampsSequencePerSourceStream(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub := b.Subscribe(16, nil)
	// Two interleaved streams: sequence numbers are dense per
	// (Source, SourceHost, Type), not global.
	for i := 0; i < 3; i++ {
		b.Publish(Event{Source: "asgard.log", SourceHost: "h1", Type: TypeOperation})
		b.Publish(Event{Source: "asgard.log", SourceHost: "h2", Type: TypeOperation})
	}
	want := map[string]uint64{}
	for i := 0; i < 6; i++ {
		e := <-sub.C
		key := e.Source + "|" + e.SourceHost + "|" + e.Type
		if got := want[key] + 1; e.Seq != got {
			t.Fatalf("%s: seq = %d, want %d", key, e.Seq, got)
		}
		want[key]++
	}
	// A republished duplicate keeps its original number — that is what
	// makes duplicates detectable downstream.
	dup := Event{Source: "asgard.log", SourceHost: "h1", Type: TypeOperation, Seq: 2}
	b.Publish(dup)
	if e := <-sub.C; e.Seq != 2 {
		t.Fatalf("duplicate restamped to %d", e.Seq)
	}
}

func TestBusCancelClosesChannel(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub := b.Subscribe(1, nil)
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.C; ok {
		t.Fatal("channel not closed after Cancel")
	}
	b.Publish(Event{Message: "x"}) // must not panic
}

func TestBusCloseIsIdempotentAndStopsDelivery(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1, nil)
	b.Close()
	b.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription channel open after bus close")
	}
	b.Publish(Event{Message: "x"}) // no-op, no panic
	if s := b.Subscribe(1, nil); s != nil {
		if _, ok := <-s.C; ok {
			t.Fatal("subscribe after close returned open channel")
		}
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	defer b.Close()
	var wg sync.WaitGroup
	sub := b.Subscribe(1024, nil)
	done := make(chan struct{})
	var received int
	go func() {
		defer close(done)
		for range sub.C {
			received++
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Event{Message: "m"})
			}
		}()
	}
	wg.Wait()
	sub.Cancel()
	<-done
	if received == 0 {
		t.Fatal("no events received")
	}
}

func TestMemorySink(t *testing.T) {
	s := NewMemorySink()
	s.Write(Event{Type: TypeOperation})
	s.Write(Event{Type: TypeCloud})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := s.Filter(func(e Event) bool { return e.Type == TypeCloud })
	if len(got) != 1 {
		t.Fatalf("Filter returned %d", len(got))
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestJSONSinkWritesLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	s.Write(sampleEvent())
	s.Write(sampleEvent())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
}

func TestMultiSinkAndFuncSink(t *testing.T) {
	var n int
	m := MultiSink{FuncSink(func(Event) { n++ }), FuncSink(func(Event) { n++ })}
	m.Write(Event{})
	if n != 2 {
		t.Fatalf("MultiSink delivered %d times", n)
	}
}

func TestFormatParseOperationLineRoundTrip(t *testing.T) {
	ts := time.Date(2013, 10, 24, 11, 41, 48, 312e6, time.UTC)
	line := FormatOperationLine(ts, "Pushing ami-1 into group g", "Instance ready.")
	gotTS, task, msg, ok := ParseOperationLine(line)
	if !ok {
		t.Fatal("ParseOperationLine failed")
	}
	if !gotTS.Equal(ts) {
		t.Errorf("ts = %v, want %v", gotTS, ts)
	}
	if task != "Pushing ami-1 into group g" {
		t.Errorf("task = %q", task)
	}
	if msg != "Instance ready." {
		t.Errorf("msg = %q", msg)
	}
}

func TestParseOperationLineNonConforming(t *testing.T) {
	cases := []string{
		"no brackets at all",
		"[not-a-timestamp] [Task:x] hi",
		"[2013-10-24 11:41:48,312 unclosed",
		"",
	}
	for _, line := range cases {
		if _, _, _, ok := ParseOperationLine(line); ok {
			t.Errorf("ParseOperationLine(%q) = ok", line)
		}
	}
}

func TestParseOperationLineWithoutTask(t *testing.T) {
	line := "[2013-10-24 11:41:48,312] plain message"
	_, task, msg, ok := ParseOperationLine(line)
	if !ok || task != "" || msg != "plain message" {
		t.Fatalf("got ok=%v task=%q msg=%q", ok, task, msg)
	}
}

func TestFormatParseProperty(t *testing.T) {
	// Property: any task/message without brackets round-trips.
	f := func(a, b string) bool {
		clean := func(s string) string {
			s = strings.Map(func(r rune) rune {
				if r == '[' || r == ']' || r == '\n' || r == '\r' {
					return -1
				}
				return r
			}, s)
			return strings.TrimSpace(s)
		}
		task, msg := clean(a), clean(b)
		if task == "" || msg == "" {
			return true
		}
		ts := time.Date(2020, 1, 2, 3, 4, 5, 678e6, time.UTC)
		_, gotTask, gotMsg, ok := ParseOperationLine(FormatOperationLine(ts, task, msg))
		return ok && gotTask == task && gotMsg == msg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Regression for the Publish drop-oldest retry loop: with a consumer
// concurrently draining a buffer-1 subscription, the old unbounded
// send/evict/retry cycle could spin while holding the bus lock. Publish
// now makes bounded progress per subscriber, and every published event is
// accounted for: received + still-buffered + dropped == published.
func TestBusPublishBoundedUnderConcurrentDrain(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1, nil)

	var received atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C {
			received.Add(1)
		}
	}()

	const published = 5000
	for i := 0; i < published; i++ {
		b.Publish(Event{Message: "x"})
	}
	b.Close() // closes sub.C; the drainer consumes whatever is buffered first

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish or drain stalled")
	}
	total := received.Load() + b.Dropped()
	if total != published {
		t.Fatalf("received %d + dropped %d = %d, want %d",
			received.Load(), b.Dropped(), total, published)
	}
}
