package logging

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink consumes log events, e.g. to store or display them.
type Sink interface {
	// Write consumes one event.
	Write(e Event)
}

// MemorySink is a thread-safe in-memory sink, used by tests and as the
// backing store of the central log storage.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

var _ Sink = (*MemorySink)(nil)

// NewMemorySink returns an empty sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Write implements Sink.
func (s *MemorySink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Len returns the number of stored events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Events returns a copy of all stored events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Filter returns a copy of the stored events matching pred.
func (s *MemorySink) Filter(pred func(Event) bool) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, e := range s.events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all stored events.
func (s *MemorySink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = nil
}

// JSONSink writes each event as one JSON line (Logstash v1 format) to an
// io.Writer.
type JSONSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

var _ Sink = (*JSONSink)(nil)

// NewJSONSink wraps w in a buffered JSON-lines sink. Call Flush before
// discarding it.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{w: bufio.NewWriter(w)}
}

// Write implements Sink. Marshal errors are impossible for Event (all
// fields are marshalable); a short write surfaces at Flush.
func (s *JSONSink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.w.Write(data)     //nolint:errcheck // surfaced by Flush
	s.w.WriteByte('\n') //nolint:errcheck // surfaced by Flush
}

// Flush flushes buffered output.
func (s *JSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// TextSink renders events with Event.String, one per line.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

var _ Sink = (*TextSink)(nil)

// NewTextSink returns a sink writing human-readable lines to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Write implements Sink.
func (s *TextSink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintln(s.w, e.String())
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Event)

var _ Sink = FuncSink(nil)

// Write implements Sink.
func (f FuncSink) Write(e Event) { f(e) }

// MultiSink fans events out to several sinks.
type MultiSink []Sink

var _ Sink = MultiSink(nil)

// Write implements Sink.
func (m MultiSink) Write(e Event) {
	for _, s := range m {
		s.Write(e)
	}
}
