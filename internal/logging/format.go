package logging

import (
	"fmt"
	"strings"
	"time"
)

// TimestampLayout is the Asgard-style log timestamp format, e.g.
// "2013-10-24 11:41:48,312".
const TimestampLayout = "2006-01-02 15:04:05,000"

// FormatOperationLine renders an operation-node log line in the Asgard
// style the paper's examples use:
//
//	[2013-10-24 11:41:48,312] [Task:Pushing ami-750c9e4f into group pm--asg] Instance ... is ready.
func FormatOperationLine(ts time.Time, task, message string) string {
	return fmt.Sprintf("[%s] [Task:%s] %s", ts.Format(TimestampLayout), task, message)
}

// ParseOperationLine splits an operation line into its timestamp, task
// label, and message. It returns ok=false for lines that do not follow the
// Asgard shape (such lines are still valid input to the pipeline; they are
// simply unannotated noise).
func ParseOperationLine(line string) (ts time.Time, task, message string, ok bool) {
	rest, tsPart, found := cutBracket(line)
	if !found {
		return time.Time{}, "", "", false
	}
	ts, err := time.Parse(TimestampLayout, tsPart)
	if err != nil {
		return time.Time{}, "", "", false
	}
	rest2, taskPart, found := cutBracket(rest)
	if !found || !strings.HasPrefix(taskPart, "Task:") {
		return ts, "", strings.TrimSpace(rest), true
	}
	return ts, strings.TrimPrefix(taskPart, "Task:"), strings.TrimSpace(rest2), true
}

// cutBracket consumes a leading "[...]" group, returning the remainder and
// the bracket contents.
func cutBracket(s string) (rest, contents string, ok bool) {
	s = strings.TrimLeft(s, " ")
	if !strings.HasPrefix(s, "[") {
		return s, "", false
	}
	end := strings.Index(s, "]")
	if end < 0 {
		return s, "", false
	}
	return s[end+1:], s[1:end], true
}
