package offline

import (
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/logstore"
	"poddiagnosis/internal/process"
)

func storeWith(events ...logging.Event) *logstore.Store {
	s := logstore.NewStore()
	for _, e := range events {
		s.Write(e)
	}
	return s
}

func opEv(ts time.Time, task, body string) logging.Event {
	return logging.Event{
		Timestamp: ts,
		Type:      logging.TypeOperation,
		Fields:    map[string]string{"taskid": task},
		Message:   logging.FormatOperationLine(ts, task, body),
	}
}

func assertEv(ts time.Time, task, checkID, status string) logging.Event {
	return logging.Event{
		Timestamp: ts,
		Type:      logging.TypeAssertion,
		Fields:    map[string]string{"taskid": task, "checkid": checkID, "status": status, "trigger": "log"},
		Message:   "[assertion] " + checkID + " " + status,
	}
}

func diagEv(ts time.Time, task, msg string) logging.Event {
	return logging.Event{
		Timestamp: ts,
		Type:      logging.TypeDiagnosis,
		Fields:    map[string]string{"taskid": task},
		Message:   "[ts] [diagnosis] [" + task + "] [step7] " + msg,
	}
}

func cleanTrace(ts time.Time, task string) []logging.Event {
	bodies := []string{
		"Starting rolling upgrade of group g to image ami-2",
		"Created launch configuration lc with image ami-2",
		"Sorted 1 instances for replacement",
		"Removed and deregistered instance i-1 from ELB e",
		"Terminating old instance i-1",
		"Waiting for group g to start a new instance",
		"Instance pm on i-2 is ready for use. 1 of 1 instance relaunches done.",
		"Rolling upgrade task completed",
	}
	var out []logging.Event
	for i, b := range bodies {
		out = append(out, opEv(ts.Add(time.Duration(i)*30*time.Second), task, b))
	}
	return out
}

func TestAnalyzeCleanInstance(t *testing.T) {
	ts := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	store := storeWith(cleanTrace(ts, "t1")...)
	store.Write(assertEv(ts.Add(time.Hour), "t1", "asg-instance-count", "pass"))
	rep, err := Analyze(store, process.RollingUpgradeModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != 1 {
		t.Fatalf("instances = %d", len(rep.Instances))
	}
	inst := rep.Instances[0]
	if !inst.Completed {
		t.Error("clean trace not completed")
	}
	if len(inst.Anomalies) != 0 {
		t.Errorf("anomalies = %+v", inst.Anomalies)
	}
	if inst.AssertionsEvaluated != 1 || inst.AssertionsFailed != 0 {
		t.Errorf("assertion counts = %d/%d", inst.AssertionsEvaluated, inst.AssertionsFailed)
	}
	if inst.Finished.Sub(inst.Started) != 7*30*time.Second {
		t.Errorf("span = %s", inst.Finished.Sub(inst.Started))
	}
}

func TestAnalyzeAnomalousInstance(t *testing.T) {
	ts := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	store := storeWith(
		opEv(ts, "t2", "Starting rolling upgrade of group g to image ami-2"),
		opEv(ts.Add(time.Minute), "t2", "Terminating old instance i-1"), // skipped steps -> unfit
		opEv(ts.Add(2*time.Minute), "t2", "ERROR: deregistering instance i-1: LoadBalancerNotFound"),
	)
	store.Write(assertEv(ts.Add(3*time.Minute), "t2", "asg-version-count", "fail"))
	store.Write(assertEv(ts.Add(3*time.Minute), "t2", "elb-reachable", "error"))
	store.Write(diagEv(ts.Add(4*time.Minute), "t2", "One root cause is identified: The load balancer e is unavailable"))
	store.Write(diagEv(ts.Add(5*time.Minute), "t2", "No root cause identified"))

	rep, err := Analyze(store, process.RollingUpgradeModel())
	if err != nil {
		t.Fatal(err)
	}
	inst := rep.Instances[0]
	if inst.Completed {
		t.Error("anomalous trace completed")
	}
	kinds := map[string]int{}
	for _, a := range inst.Anomalies {
		kinds[a.Kind]++
	}
	if kinds["conformance"] != 2 { // unfit terminate + error line
		t.Errorf("conformance anomalies = %d (%+v)", kinds["conformance"], inst.Anomalies)
	}
	if kinds["assertion"] != 2 {
		t.Errorf("assertion anomalies = %d", kinds["assertion"])
	}
	if kinds["diagnosis"] != 2 {
		t.Errorf("diagnosis anomalies = %d", kinds["diagnosis"])
	}
	if len(inst.RootCauses) != 1 || !strings.Contains(inst.RootCauses[0], "load balancer") {
		t.Errorf("root causes = %v", inst.RootCauses)
	}
	// Anomalies must be time ordered.
	for i := 1; i < len(inst.Anomalies); i++ {
		if inst.Anomalies[i].At.Before(inst.Anomalies[i-1].At) {
			t.Fatal("anomalies out of order")
		}
	}
}

func TestAnalyzeMultipleInstancesOrdered(t *testing.T) {
	ts := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	store := logstore.NewStore()
	for _, e := range cleanTrace(ts.Add(time.Hour), "later") {
		store.Write(e)
	}
	for _, e := range cleanTrace(ts, "earlier") {
		store.Write(e)
	}
	rep, err := Analyze(store, process.RollingUpgradeModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != 2 {
		t.Fatalf("instances = %d", len(rep.Instances))
	}
	if rep.Instances[0].InstanceID != "earlier" || rep.Instances[1].InstanceID != "later" {
		t.Errorf("order = %s, %s", rep.Instances[0].InstanceID, rep.Instances[1].InstanceID)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, process.RollingUpgradeModel()); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := Analyze(logstore.NewStore(), nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestRenderReport(t *testing.T) {
	ts := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	store := storeWith(cleanTrace(ts, "good")...)
	store.Write(opEv(ts.Add(2*time.Hour), "bad", "Terminating old instance i-9"))
	store.Write(diagEv(ts.Add(2*time.Hour+time.Minute), "bad", "One root cause is identified: X"))
	rep, _ := Analyze(store, process.RollingUpgradeModel())
	out := rep.Render()
	for _, want := range []string{"post-mortem", "completed", "INCOMPLETE", "no anomalies", "ROOT CAUSE: One root cause is identified: X"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
