// Package offline implements post-mortem analysis over the central log
// storage — the paper notes the merged, process-annotated logs "can be
// used for future process discovery … or offline diagnosis" (§III.B).
//
// Analyze replays each process instance's operation log through a fresh
// conformance checker (offline token replay), correlates the stored
// assertion-evaluation and diagnosis records, and produces a per-instance
// post-mortem: the executed trace, its conformance verdicts, every
// anomaly, and the diagnosis conclusions reached online.
package offline

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/logstore"
	"poddiagnosis/internal/pipeline"
	"poddiagnosis/internal/process"
)

// TraceStep is one replayed operation event.
type TraceStep struct {
	// At is the event time.
	At time.Time `json:"at"`
	// ActivityID is the classified activity ("" when unclassified).
	ActivityID string `json:"activityId,omitempty"`
	// StepID is the activity's process step.
	StepID string `json:"stepId,omitempty"`
	// Verdict is the offline conformance verdict.
	Verdict conformance.Verdict `json:"verdict"`
	// Line is the log body.
	Line string `json:"line"`
}

// Anomaly is one stored or replayed anomaly.
type Anomaly struct {
	// At is when the anomaly was observed.
	At time.Time `json:"at"`
	// Kind is "conformance", "assertion" or "diagnosis".
	Kind string `json:"kind"`
	// Detail is a human-readable summary.
	Detail string `json:"detail"`
}

// InstanceReport is the post-mortem of one process instance.
type InstanceReport struct {
	// InstanceID is the process instance.
	InstanceID string `json:"instanceId"`
	// Trace is the ordered operation trace with offline verdicts.
	Trace []TraceStep `json:"trace"`
	// Completed reports whether the replay reached an end state.
	Completed bool `json:"completed"`
	// Fitness is the fraction of operation events that replayed fit
	// (§III.B.2's log/model fitness).
	Fitness float64 `json:"fitness"`
	// Started and Finished bound the instance's events.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Anomalies merges replayed conformance anomalies with stored
	// assertion failures and diagnosis conclusions, in time order.
	Anomalies []Anomaly `json:"anomalies,omitempty"`
	// AssertionsEvaluated / AssertionsFailed count stored assertion
	// records.
	AssertionsEvaluated int `json:"assertionsEvaluated"`
	AssertionsFailed    int `json:"assertionsFailed"`
	// RootCauses are the "root cause identified" diagnosis lines.
	RootCauses []string `json:"rootCauses,omitempty"`
}

// Report is the whole-store post-mortem.
type Report struct {
	// Instances are the per-instance reports, ordered by start time.
	Instances []InstanceReport `json:"instances"`
	// EventsAnalyzed is the total number of stored events consumed.
	EventsAnalyzed int `json:"eventsAnalyzed"`
}

// Analyze builds the post-mortem for every process instance in the store.
func Analyze(store *logstore.Store, model *process.Model) (*Report, error) {
	if store == nil || model == nil {
		return nil, fmt.Errorf("offline: store and model are required")
	}
	rep := &Report{EventsAnalyzed: store.Len()}
	for _, id := range store.InstanceIDs() {
		rep.Instances = append(rep.Instances, analyzeInstance(store, model, id))
	}
	sort.Slice(rep.Instances, func(i, j int) bool {
		return rep.Instances[i].Started.Before(rep.Instances[j].Started)
	})
	return rep, nil
}

func analyzeInstance(store *logstore.Store, model *process.Model, id string) InstanceReport {
	out := InstanceReport{InstanceID: id}
	checker := conformance.NewChecker(model)

	ops := store.Select(logstore.Query{Type: logging.TypeOperation, InstanceID: id})
	for _, ev := range ops {
		body := pipeline.BodyOf(ev)
		res := checker.Check(id, body, ev.Timestamp)
		step := TraceStep{
			At:         ev.Timestamp,
			ActivityID: res.ActivityID,
			StepID:     res.StepID,
			Verdict:    res.Verdict,
			Line:       body,
		}
		out.Trace = append(out.Trace, step)
		if res.Verdict.IsAnomalous() {
			out.Anomalies = append(out.Anomalies, Anomaly{
				At:     ev.Timestamp,
				Kind:   "conformance",
				Detail: fmt.Sprintf("%s: %q", res.Verdict.Tag(), body),
			})
		}
	}
	out.Completed = checker.Completed(id)
	out.Fitness = checker.StatsFor(id).Fitness()
	if len(out.Trace) > 0 {
		out.Started = out.Trace[0].At
		out.Finished = out.Trace[len(out.Trace)-1].At
	}

	for _, ev := range store.Select(logstore.Query{Type: logging.TypeAssertion, InstanceID: id}) {
		out.AssertionsEvaluated++
		if status := ev.Field("status"); status == "fail" || status == "error" {
			out.AssertionsFailed++
			out.Anomalies = append(out.Anomalies, Anomaly{
				At:     ev.Timestamp,
				Kind:   "assertion",
				Detail: fmt.Sprintf("%s %s (trigger %s)", ev.Field("checkid"), status, ev.Field("trigger")),
			})
		}
	}

	for _, ev := range store.Select(logstore.Query{Type: logging.TypeDiagnosis, InstanceID: id}) {
		switch {
		case strings.Contains(ev.Message, "root cause is identified") ||
			strings.Contains(ev.Message, "root causes are identified"):
			out.RootCauses = append(out.RootCauses, tail(ev.Message))
			out.Anomalies = append(out.Anomalies, Anomaly{
				At: ev.Timestamp, Kind: "diagnosis", Detail: tail(ev.Message),
			})
		case strings.Contains(ev.Message, "No root cause identified"):
			out.Anomalies = append(out.Anomalies, Anomaly{
				At: ev.Timestamp, Kind: "diagnosis", Detail: "no root cause identified",
			})
		}
	}

	sort.SliceStable(out.Anomalies, func(i, j int) bool {
		return out.Anomalies[i].At.Before(out.Anomalies[j].At)
	})
	return out
}

// tail strips the bracketed prefixes of a diagnosis log line.
func tail(msg string) string {
	if idx := strings.LastIndex(msg, "] "); idx >= 0 {
		return msg[idx+2:]
	}
	return msg
}

// Render prints the report for operators.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "post-mortem over %d stored events, %d process instance(s)\n",
		r.EventsAnalyzed, len(r.Instances))
	for _, inst := range r.Instances {
		status := "INCOMPLETE"
		if inst.Completed {
			status = "completed"
		}
		fmt.Fprintf(&b, "\nprocess instance %q — %s, %d events, fitness %.2f, %s\n",
			inst.InstanceID, status, len(inst.Trace), inst.Fitness,
			inst.Finished.Sub(inst.Started).Round(time.Second))
		fmt.Fprintf(&b, "  assertions: %d evaluated, %d failed\n",
			inst.AssertionsEvaluated, inst.AssertionsFailed)
		if len(inst.Anomalies) == 0 {
			b.WriteString("  no anomalies\n")
			continue
		}
		fmt.Fprintf(&b, "  anomalies (%d):\n", len(inst.Anomalies))
		for _, a := range inst.Anomalies {
			fmt.Fprintf(&b, "    %s [%s] %s\n", a.At.Format("15:04:05"), a.Kind, a.Detail)
		}
		for _, c := range inst.RootCauses {
			fmt.Fprintf(&b, "  ROOT CAUSE: %s\n", c)
		}
	}
	return b.String()
}
