// Package rest exposes Conformance Checking, Assertion Evaluation and
// Error Diagnosis as RESTful web services, mirroring the paper's RESTlet
// deployment (§IV): the process model is provided to the services
// up-front; the local log agent posts one message per event containing the
// process model id, the trace id, and the whole log line.
package rest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/diagnosis"
)

// ConformanceRequest is the body of POST /conformance/check.
type ConformanceRequest struct {
	// ModelID names the process model (informational; the server is
	// bound to one model at construction, as in the paper).
	ModelID string `json:"modelId,omitempty"`
	// TraceID is the process instance id.
	TraceID string `json:"traceId"`
	// Line is the raw log line.
	Line string `json:"line"`
	// Timestamp is the event time (optional).
	Timestamp time.Time `json:"timestamp,omitempty"`
}

// EvaluateRequest is the body of POST /assertions/evaluate.
type EvaluateRequest struct {
	// CheckID names the assertion to evaluate.
	CheckID string `json:"checkId"`
	// Params are the evaluation parameters.
	Params assertion.Params `json:"params"`
	// Trigger carries the process context.
	Trigger assertion.Trigger `json:"trigger"`
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	// Error is the message.
	Error string `json:"error"`
}

// Server hosts the three POD services over one model.
type Server struct {
	checker *conformance.Checker
	eval    *assertion.Evaluator
	diag    *diagnosis.Engine
	mux     *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer builds a Server. Any of the components may be nil; their
// endpoints then return 503.
func NewServer(checker *conformance.Checker, eval *assertion.Evaluator, diag *diagnosis.Engine) *Server {
	s := &Server{checker: checker, eval: eval, diag: diag, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /conformance/check", s.handleConformance)
	s.mux.HandleFunc("GET /conformance/instances", s.handleInstances)
	s.mux.HandleFunc("GET /conformance/stats", s.handleStats)
	s.mux.HandleFunc("POST /assertions/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("GET /assertions/checks", s.handleChecks)
	s.mux.HandleFunc("POST /diagnosis", s.handleDiagnose)
	s.mux.HandleFunc("GET /model", s.handleModel)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleConformance(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	var req ConformanceRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.TraceID == "" || req.Line == "" {
		writeErr(w, http.StatusBadRequest, errors.New("traceId and line are required"))
		return
	}
	ts := req.Timestamp
	if ts.IsZero() {
		ts = time.Now()
	}
	writeJSON(w, http.StatusOK, s.checker.Check(req.TraceID, req.Line, ts))
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	ids := s.checker.InstanceIDs()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	traceID := r.URL.Query().Get("trace")
	if traceID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("query parameter 'trace' is required"))
		return
	}
	stats := s.checker.StatsFor(traceID)
	writeJSON(w, http.StatusOK, map[string]any{
		"events":    stats.Events,
		"fit":       stats.Fit,
		"fitness":   stats.Fitness(),
		"completed": stats.Completed,
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if s.eval == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("assertion evaluation not configured"))
		return
	}
	var req EvaluateRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.CheckID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("checkId is required"))
		return
	}
	writeJSON(w, http.StatusOK, s.eval.Evaluate(r.Context(), req.CheckID, req.Params, req.Trigger))
}

func (s *Server) handleChecks(w http.ResponseWriter, r *http.Request) {
	if s.eval == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("assertion evaluation not configured"))
		return
	}
	ids := s.eval.Registry().IDs()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("diagnosis not configured"))
		return
	}
	var req diagnosis.Request
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.diag.Diagnose(r.Context(), req))
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	writeJSON(w, http.StatusOK, s.checker.Model())
}

func decode(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("rest: decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}
