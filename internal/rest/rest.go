// Package rest exposes Conformance Checking, Assertion Evaluation and
// Error Diagnosis as RESTful web services, mirroring the paper's RESTlet
// deployment (§IV): the process model is provided to the services
// up-front; the local log agent posts one message per event containing the
// process model id, the trace id, and the whole log line.
package rest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/federate"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/pipeline"
	"poddiagnosis/internal/resilience"
)

// HTTP serving metrics, labelled by logical route name (not raw path, to
// keep cardinality bounded).
var (
	mRequests = obs.Default.CounterVec("pod_http_requests_total",
		"HTTP requests by route and status class.", "route", "class")
	mRequestLatency = obs.Default.HistogramVec("pod_http_request_seconds",
		"HTTP request handling latency by route.", nil, "route")
)

// ConformanceRequest is the body of POST /conformance/check.
type ConformanceRequest struct {
	// ModelID names the process model (informational; the server is
	// bound to one model at construction, as in the paper).
	ModelID string `json:"modelId,omitempty"`
	// TraceID is the process instance id.
	TraceID string `json:"traceId"`
	// Line is the raw log line.
	Line string `json:"line"`
	// Timestamp is the event time (optional).
	Timestamp time.Time `json:"timestamp,omitempty"`
}

// EvaluateRequest is the body of POST /assertions/evaluate.
type EvaluateRequest struct {
	// CheckID names the assertion to evaluate.
	CheckID string `json:"checkId"`
	// Params are the evaluation parameters.
	Params assertion.Params `json:"params"`
	// Trigger carries the process context.
	Trigger assertion.Trigger `json:"trigger"`
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	// Error is the message.
	Error string `json:"error"`
}

// ReadyStatus is the body of GET /readyz.
type ReadyStatus struct {
	// Ready reports whether the deployment can take traffic.
	Ready bool `json:"ready"`
	// QueueDepth is the monitoring engine's backlog (queued evaluations,
	// diagnoses and undrained log events); zero means drained.
	QueueDepth int `json:"queueDepth"`
	// PerOperation breaks the backlog down by monitoring session (queued
	// plus in-flight work per operation) when a manager is attached.
	PerOperation map[string]int `json:"perOperation,omitempty"`
	// Detail is free-form context, e.g. per-queue depths.
	Detail string `json:"detail,omitempty"`
}

// Option customizes a Server.
type Option func(*Server)

// WithReady installs the readiness probe backing GET /readyz; typically a
// closure over core.Engine.QueueDepth. Without it /readyz always reports
// ready with depth 0.
func WithReady(fn func() ReadyStatus) Option {
	return func(s *Server) { s.ready = fn }
}

// WithObservability overrides the metrics registry and tracer served by
// GET /metrics and GET /traces (default: obs.Default, obs.DefaultTracer).
func WithObservability(reg *obs.Registry, tracer *obs.Tracer) Option {
	return func(s *Server) { s.reg, s.tracer = reg, tracer }
}

// WithManager attaches a core.Manager, enabling the /operations endpoints
// (register, list, inspect, fetch detections, remove). Unless WithReady
// overrides it, GET /readyz then aggregates the manager's backlog with a
// per-operation breakdown.
func WithManager(m *core.Manager) Option {
	return func(s *Server) { s.mgr = m }
}

// Server hosts the three POD services over one model.
type Server struct {
	checker       *conformance.Checker
	eval          *assertion.Evaluator
	diag          *diagnosis.Engine
	mgr           *core.Manager
	front         *federate.Front
	memberFactory func(id, base string) federate.Member
	mux           *http.ServeMux
	reg           *obs.Registry
	tracer        *obs.Tracer
	ready         func() ReadyStatus
}

var _ http.Handler = (*Server)(nil)

// NewServer builds a Server. Any of the components may be nil; their
// endpoints then return 503.
func NewServer(checker *conformance.Checker, eval *assertion.Evaluator, diag *diagnosis.Engine, opts ...Option) *Server {
	s := &Server{
		checker: checker, eval: eval, diag: diag,
		mux:    http.NewServeMux(),
		reg:    obs.Default,
		tracer: obs.DefaultTracer,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ready == nil && s.mgr != nil {
		s.ready = managerReady(s.mgr)
	}
	s.route("POST /conformance/check", "conformance_check", s.handleConformance)
	s.route("POST /operations", "operations_create", s.handleOperationCreate)
	s.route("GET /operations", "operations_list", s.handleOperationList)
	s.route("GET /operations/{id}", "operations_get", s.handleOperationGet)
	s.route("GET /operations/{id}/detections", "operations_detections", s.handleOperationDetections)
	s.route("GET /operations/{id}/timeline", "operations_timeline", s.handleOperationTimeline)
	s.route("GET /operations/{id}/remediations", "operations_remediations", s.handleOperationRemediations)
	s.route("POST /remediations/{id}/approve", "remediations_approve", s.handleRemediationApprove)
	s.route("DELETE /operations/{id}", "operations_delete", s.handleOperationDelete)
	s.route("GET /operations/{id}/export", "operations_export", s.handleOperationExport)
	s.route("POST /operations/restore", "operations_restore", s.handleOperationRestore)
	s.route("POST /federation/join", "federation_join", s.handleFederationJoin)
	s.route("POST /federation/renew", "federation_renew", s.handleFederationRenew)
	s.route("GET /federation/members", "federation_members", s.handleFederationMembers)
	s.route("GET /federation/route/{id}", "federation_route", s.handleFederationRoute)
	s.route("GET /conformance/instances", "conformance_instances", s.handleInstances)
	s.route("GET /conformance/stats", "conformance_stats", s.handleStats)
	s.route("POST /assertions/evaluate", "assertions_evaluate", s.handleEvaluate)
	s.route("GET /assertions/checks", "assertions_checks", s.handleChecks)
	s.route("POST /diagnosis", "diagnosis", s.handleDiagnose)
	s.route("GET /diagnosis/config", "diagnosis_config", s.handleDiagnosisConfig)
	s.route("GET /diagnosis/resilience", "diagnosis_resilience", s.handleDiagnosisResilience)
	s.route("GET /diagnosis/plans", "diagnosis_plans", s.handlePlans)
	s.route("GET /diagnosis/plans/{id}", "diagnosis_plan_get", s.handlePlanGet)
	s.route("GET /model", "model", s.handleModel)
	s.route("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.route("GET /readyz", "readyz", s.handleReady)
	s.route("GET /metrics", "metrics", obs.MetricsHandler(s.reg).ServeHTTP)
	s.route("GET /traces", "traces", obs.TracesHandler(s.tracer).ServeHTTP)
	// Catch-all so unknown paths get the JSON error envelope instead of
	// the mux's plain-text 404.
	s.route("/", "not_found", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return s
}

// route registers pattern with the serving middleware: a span per
// request, a status-class counter and a latency histogram, all labelled
// with the logical route name.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := clock.Wall.Now()
		ctx, span := s.tracer.StartSpan(r.Context(), "http."+name)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		span.SetAttr("status", fmt.Sprintf("%d", sw.status))
		span.End()
		mRequests.With(name, statusClass(sw.status)).Inc()
		mRequestLatency.With(name).Observe(clock.Wall.Since(start).Seconds())
	})
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// statusClass buckets a status code as "2xx", "4xx", ...
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	st := ReadyStatus{Ready: true}
	if s.ready != nil {
		st = s.ready()
	}
	status := http.StatusOK
	if !st.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, st)
}

func (s *Server) handleConformance(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	var req ConformanceRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.TraceID == "" || req.Line == "" {
		writeErr(w, http.StatusBadRequest, errors.New("traceId and line are required"))
		return
	}
	ts := req.Timestamp
	if ts.IsZero() {
		ts = clock.Wall.Now()
	}
	writeJSON(w, http.StatusOK, s.checker.Check(req.TraceID, req.Line, ts))
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	ids := s.checker.InstanceIDs()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	traceID := r.URL.Query().Get("trace")
	if traceID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("query parameter 'trace' is required"))
		return
	}
	stats := s.checker.StatsFor(traceID)
	writeJSON(w, http.StatusOK, map[string]any{
		"events":    stats.Events,
		"fit":       stats.Fit,
		"fitness":   stats.Fitness(),
		"completed": stats.Completed,
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if s.eval == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("assertion evaluation not configured"))
		return
	}
	var req EvaluateRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.CheckID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("checkId is required"))
		return
	}
	writeJSON(w, http.StatusOK, s.eval.Evaluate(r.Context(), req.CheckID, req.Params, req.Trigger))
}

func (s *Server) handleChecks(w http.ResponseWriter, r *http.Request) {
	if s.eval == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("assertion evaluation not configured"))
		return
	}
	ids := s.eval.Registry().IDs()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("diagnosis not configured"))
		return
	}
	var req diagnosis.Request
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.diag.Diagnose(r.Context(), req))
}

// DiagnosisConfig is the body of GET /diagnosis/config: the engine's
// effective tuning plus live shared-cache statistics, so operators can see
// the parallelism knob and cache behaviour without scraping /metrics.
type DiagnosisConfig struct {
	// Workers is the fan-out bound for one fault-tree walk; 1 means the
	// sequential paper walk.
	Workers int `json:"workers"`
	// MaxTests is the per-run diagnosis test budget.
	MaxTests int `json:"maxTests"`
	// SharedCacheTTL is the effective cross-run reuse window (clamped to
	// the cloud's eventual-consistency window), as a duration string.
	SharedCacheTTL string `json:"sharedCacheTtl"`
	// SharedCache carries live cache counters; absent when disabled.
	SharedCache *diagnosis.CacheStats `json:"sharedCache,omitempty"`
}

func (s *Server) handleDiagnosisConfig(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("diagnosis not configured"))
		return
	}
	opts := s.diag.Options()
	cfg := DiagnosisConfig{
		Workers:        opts.Workers,
		MaxTests:       opts.MaxTests,
		SharedCacheTTL: opts.SharedCacheTTL.String(),
	}
	if c := s.diag.Cache(); c != nil {
		stats := c.Stats()
		cfg.SharedCache = &stats
	}
	writeJSON(w, http.StatusOK, cfg)
}

// ResilienceStatus is the body of GET /diagnosis/resilience: the retry
// and circuit-breaker posture of the diagnosis-test executor, plus the
// lossy-pipeline repair counters when a manager is attached.
type ResilienceStatus struct {
	// Executor is the diagnosis-test retry/breaker snapshot.
	Executor resilience.Status `json:"executor"`
	// Reorder carries the manager's reorder-buffer counters; absent in
	// standalone (manager-less) servers.
	Reorder *pipeline.ReorderStats `json:"reorder,omitempty"`
}

func (s *Server) handleDiagnosisResilience(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("diagnosis not configured"))
		return
	}
	st := ResilienceStatus{Executor: s.diag.Resilience().Snapshot()}
	if s.mgr != nil {
		rs := s.mgr.ReorderStats()
		st.Reorder = &rs
	}
	writeJSON(w, http.StatusOK, st)
}

// PlanSummary is one row of GET /diagnosis/plans: the shape of one
// diagnosis plan in the engine's catalog.
type PlanSummary struct {
	// ID is the plan id, the key of GET /diagnosis/plans/{id}.
	ID string `json:"id"`
	// AssertionID is the failing assertion the plan diagnoses.
	AssertionID string `json:"assertionId"`
	// Description explains the plan's top event.
	Description string `json:"description,omitempty"`
	// Nodes is the total node count.
	Nodes int `json:"nodes"`
	// Causes is the number of distinct diagnosable root causes.
	Causes int `json:"causes"`
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("diagnosis not configured"))
		return
	}
	out := []PlanSummary{}
	for _, p := range s.diag.Catalog().All() {
		out = append(out, PlanSummary{
			ID:          p.ID,
			AssertionID: p.AssertionID,
			Description: p.Description,
			Nodes:       len(p.Nodes),
			Causes:      len(p.PotentialRootCauses()),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("diagnosis not configured"))
		return
	}
	p := s.diag.Catalog().Get(r.PathValue("id"))
	if p == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such plan: %s", r.PathValue("id")))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		data, err := p.Render()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, p.DOT())
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or dot)", format))
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if s.checker == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("conformance checking not configured"))
		return
	}
	writeJSON(w, http.StatusOK, s.checker.Model())
}

func decode(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("rest: decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}
