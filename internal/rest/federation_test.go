package rest

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/federate"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/simaws"
)

// fedEnv is a REST federation: two member servers (each its own
// Manager over one shared simulated cloud) and one front server that
// proxies the /operations surface.
type fedEnv struct {
	clk      *clock.Scaled
	front    *federate.Front
	frontSrv *httptest.Server
	frontCl  *Client
	members  map[string]*fedEnvMember
	ctx      context.Context
}

type fedEnvMember struct {
	mgr     *core.Manager
	srv     *httptest.Server
	agent   *FederationAgent
	stopped bool
}

// kill crashes the member: REST server gone, manager stopped.
func (m *fedEnvMember) kill() {
	m.srv.Close()
	if !m.stopped {
		m.stopped = true
		m.mgr.Stop()
	}
}

func newFedEnv(t *testing.T) *fedEnv {
	t.Helper()
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.TickInterval = 200 * time.Millisecond
	cloud := simaws.New(clk, profile, simaws.WithSeed(17), simaws.WithBus(bus))
	cloud.Start()
	t.Cleanup(func() { cloud.Stop(); bus.Close() })
	ctx := context.Background()

	front := federate.NewFront(clk, federate.Config{LeaseTTL: 30 * time.Second})
	frontSrv := httptest.NewServer(NewServer(nil, nil, nil, WithFront(front)))
	t.Cleanup(frontSrv.Close)
	frontCl := NewClient(frontSrv.URL, nil, WithClientClock(clk))

	env := &fedEnv{
		clk: clk, front: front, frontSrv: frontSrv, frontCl: frontCl,
		members: map[string]*fedEnvMember{}, ctx: ctx,
	}
	for _, id := range []string{"ma", "mb"} {
		mgr, err := core.NewManager(core.ManagerConfig{
			Cloud: cloud, Bus: bus,
			API: consistentapi.Config{
				MaxAttempts: 3, InitialBackoff: 50 * time.Millisecond,
				MaxBackoff: time.Second, CallTimeout: 20 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr.Start()
		srv := httptest.NewServer(NewServer(mgr.Checker(), mgr.Evaluator(), mgr.Diagnoser(), WithManager(mgr)))
		t.Cleanup(srv.Close)
		agent := &FederationAgent{ID: id, Base: srv.URL, Manager: mgr, Front: frontCl}
		if err := agent.Join(ctx); err != nil {
			t.Fatal(err)
		}
		mem := &fedEnvMember{mgr: mgr, srv: srv, agent: agent}
		t.Cleanup(func() {
			if !mem.stopped {
				mem.stopped = true
				mem.mgr.Stop()
			}
		})
		env.members[id] = mem
	}
	return env
}

// TestFederationOverREST drives the whole lease protocol across the
// wire: join, renew with piggybacked snapshots, member death, failover
// via POST /operations/restore on the survivor, and proxy reads that
// keep answering from the front's single base URL across the handoff.
func TestFederationOverREST(t *testing.T) {
	e := newFedEnv(t)
	const opID = "wire-op"
	sum, err := e.frontCl.CreateOperation(e.ctx, OperationRequest{
		ID:          opID,
		Expect:      core.Expectation{ASGName: "wire--asg", ClusterSize: 2},
		InstanceIDs: []string{"wire-task"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ID != opID {
		t.Fatalf("created operation id %q, want %q", sum.ID, opID)
	}
	route, err := e.frontCl.FederationRoute(e.ctx, opID)
	if err != nil {
		t.Fatal(err)
	}
	owner := e.members[route.Owner]
	if owner == nil {
		t.Fatalf("route names unknown member %q", route.Owner)
	}
	var survivor *fedEnvMember
	for id, m := range e.members {
		if id != route.Owner {
			survivor = m
		}
	}

	// Heartbeats replicate both members' snapshots to the front.
	if err := owner.agent.RenewOnce(e.ctx); err != nil {
		t.Fatal(err)
	}
	if err := survivor.agent.RenewOnce(e.ctx); err != nil {
		t.Fatal(err)
	}
	infos, err := e.frontCl.FederationMembers(e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("membership size %d, want 2", len(infos))
	}

	// The owner dies: its server goes away and its heartbeats stop.
	owner.kill()
	for i := 0; i < 40; i++ {
		if err := survivor.agent.RenewOnce(e.ctx); err != nil {
			t.Fatal(err)
		}
		e.front.Tick(e.ctx)
		if r, err := e.frontCl.FederationRoute(e.ctx, opID); err == nil && r.Owner == survivor.agent.ID {
			break
		}
		if err := e.clk.Sleep(e.ctx, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	route, err = e.frontCl.FederationRoute(e.ctx, opID)
	if err != nil {
		t.Fatal(err)
	}
	if route.Owner != survivor.agent.ID {
		t.Fatalf("operation never failed over; still routed to %q", route.Owner)
	}
	if route.Epoch != 2 {
		t.Fatalf("handoff epoch %d, want 2", route.Epoch)
	}

	// The adopted session is live on the survivor, restored over REST,
	// with the handoff recorded on its flight ring — and the front's
	// proxy keeps serving it from the same base URL.
	if survivor.mgr.Session(opID) == nil {
		t.Fatalf("survivor's manager does not hold the adopted session")
	}
	got, err := e.frontCl.Operation(e.ctx, opID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != opID {
		t.Fatalf("front proxy returned operation %q, want %q", got.ID, opID)
	}
	tl, err := e.frontCl.OperationTimeline(e.ctx, opID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Entries) == 0 || tl.Entries[len(tl.Entries)-1].Kind != flight.KindHandoff {
		t.Fatalf("proxied timeline does not end with a federation.handoff entry")
	}
}

// TestFailoverClient rotates to the next base when the preferred one
// is down.
func TestFailoverClient(t *testing.T) {
	e := newFedEnv(t)
	ma, mb := e.members["ma"], e.members["mb"]
	fc, err := NewFailoverClient([]string{ma.srv.URL, mb.srv.URL}, nil, WithClientClock(e.clk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Operations(e.ctx); err != nil {
		t.Fatalf("failover client with both bases up: %v", err)
	}
	ma.srv.Close()
	if _, err := fc.Operations(e.ctx); err != nil {
		t.Fatalf("failover client did not rotate past the dead base: %v", err)
	}
	if _, err := fc.Operations(e.ctx); err != nil {
		t.Fatalf("failover client did not remember the working base: %v", err)
	}
}
