package rest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/remediate"
)

// Client talks to a POD REST server.
type Client struct {
	base string
	http *http.Client
	clk  clock.Clock
}

// ClientOption tunes a Client.
type ClientOption func(*Client)

// WithClientClock injects the clock governing the retry backoff. The
// default is the wall clock; harnesses running under a scaled clock pass
// theirs so the backoff scales with the rest of the simulation.
func WithClientClock(clk clock.Clock) ClientOption {
	return func(c *Client) {
		if clk != nil {
			c.clk = clk
		}
	}
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:8077"). A nil httpClient uses a 30s-timeout default.
func NewClient(base string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Client{base: base, http: httpClient, clk: clock.Wall}
	for _, o := range opts {
		o(c)
	}
	return c
}

// CheckConformance posts one log line for token replay.
func (c *Client) CheckConformance(ctx context.Context, req ConformanceRequest) (conformance.Result, error) {
	var out conformance.Result
	err := c.post(ctx, "/conformance/check", req, &out)
	return out, err
}

// Evaluate runs one assertion evaluation.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (assertion.Result, error) {
	var out assertion.Result
	err := c.post(ctx, "/assertions/evaluate", req, &out)
	return out, err
}

// Diagnose runs one diagnosis.
func (c *Client) Diagnose(ctx context.Context, req diagnosis.Request) (*diagnosis.Diagnosis, error) {
	var out diagnosis.Diagnosis
	if err := c.post(ctx, "/diagnosis", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Checks lists the registered assertion check ids.
func (c *Client) Checks(ctx context.Context) ([]string, error) {
	var out []string
	err := c.get(ctx, "/assertions/checks", &out)
	return out, err
}

// ConformanceStats holds the fitness summary of one trace.
type ConformanceStats struct {
	Events    int     `json:"events"`
	Fit       int     `json:"fit"`
	Fitness   float64 `json:"fitness"`
	Completed bool    `json:"completed"`
}

// Stats fetches the replay statistics of one trace.
func (c *Client) Stats(ctx context.Context, traceID string) (ConformanceStats, error) {
	var out ConformanceStats
	err := c.get(ctx, "/conformance/stats?trace="+traceID, &out)
	return out, err
}

// Instances lists the known process instance ids.
func (c *Client) Instances(ctx context.Context) ([]string, error) {
	var out []string
	err := c.get(ctx, "/conformance/instances", &out)
	return out, err
}

// Plans lists the diagnosis plans in the server's catalog.
func (c *Client) Plans(ctx context.Context) ([]PlanSummary, error) {
	var out []PlanSummary
	err := c.get(ctx, "/diagnosis/plans", &out)
	return out, err
}

// Plan fetches one diagnosis plan as its canonical JSON document.
func (c *Client) Plan(ctx context.Context, id string) (*diagplan.Plan, error) {
	var out diagplan.Plan
	if err := c.get(ctx, "/diagnosis/plans/"+url.PathEscape(id), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PlanDOT fetches one diagnosis plan rendered as a Graphviz document.
func (c *Client) PlanDOT(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/diagnosis/plans/"+url.PathEscape(id)+"?format=dot", nil)
	if err != nil {
		return "", fmt.Errorf("rest client: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("rest client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return "", fmt.Errorf("rest client: GET plan dot: status %d: %s", resp.StatusCode, eb.Error)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("rest client: %w", err)
	}
	return string(data), nil
}

// Resilience fetches the diagnosis-test retry/breaker posture and the
// lossy-pipeline repair counters.
func (c *Client) Resilience(ctx context.Context) (ResilienceStatus, error) {
	var out ResilienceStatus
	err := c.get(ctx, "/diagnosis/resilience", &out)
	return out, err
}

// Healthy reports whether the server responds to the health check.
func (c *Client) Healthy(ctx context.Context) bool {
	var out map[string]string
	return c.get(ctx, "/healthz", &out) == nil
}

// Ready fetches the readiness status, including the per-operation backlog
// breakdown when the server has a manager attached.
func (c *Client) Ready(ctx context.Context) (ReadyStatus, error) {
	var out ReadyStatus
	err := c.get(ctx, "/readyz", &out)
	return out, err
}

// CreateOperation registers a new monitoring session with the server's
// manager and returns its summary.
func (c *Client) CreateOperation(ctx context.Context, req OperationRequest) (core.SessionSummary, error) {
	var out core.SessionSummary
	err := c.post(ctx, "/operations", req, &out)
	return out, err
}

// Operations lists the manager's monitoring sessions.
func (c *Client) Operations(ctx context.Context) ([]core.SessionSummary, error) {
	var out []core.SessionSummary
	err := c.get(ctx, "/operations", &out)
	return out, err
}

// Operation fetches one monitoring session's summary.
func (c *Client) Operation(ctx context.Context, id string) (core.SessionSummary, error) {
	var out core.SessionSummary
	err := c.get(ctx, "/operations/"+url.PathEscape(id), &out)
	return out, err
}

// OperationDetections fetches the detections recorded by one session.
func (c *Client) OperationDetections(ctx context.Context, id string) ([]core.Detection, error) {
	var out []core.Detection
	err := c.get(ctx, "/operations/"+url.PathEscape(id)+"/detections", &out)
	return out, err
}

// OperationTimeline fetches one session's causal flight-recorder
// timeline, optionally restricted to the given event kinds.
func (c *Client) OperationTimeline(ctx context.Context, id string, kinds ...string) (flight.Timeline, error) {
	path := "/operations/" + url.PathEscape(id) + "/timeline"
	if len(kinds) > 0 {
		q := url.Values{"kind": kinds}
		path += "?" + q.Encode()
	}
	var out flight.Timeline
	err := c.get(ctx, path, &out)
	return out, err
}

// Remediations fetches the remediations admitted for one operation's
// confirmed causes (pending approvals, dry-run records, outcomes).
func (c *Client) Remediations(ctx context.Context, id string) ([]remediate.Remediation, error) {
	var out []remediate.Remediation
	err := c.get(ctx, "/operations/"+url.PathEscape(id)+"/remediations", &out)
	return out, err
}

// ApproveRemediation executes one pending (approve-mode) remediation and
// returns its resolved record.
func (c *Client) ApproveRemediation(ctx context.Context, id string) (remediate.Remediation, error) {
	var out remediate.Remediation
	err := c.post(ctx, "/remediations/"+url.PathEscape(id)+"/approve", struct{}{}, &out)
	return out, err
}

// RemoveOperation ends and deletes one monitoring session.
func (c *Client) RemoveOperation(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/operations/"+url.PathEscape(id), nil)
	if err != nil {
		return fmt.Errorf("rest client: %w", err)
	}
	return c.do(req, nil)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("rest client: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("rest client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("rest client: %w", err)
	}
	return c.do(req, out)
}

// retryDelay is the single short backoff before an idempotent GET retry.
var retryDelay = 100 * time.Millisecond

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if retryable(req, resp, err) {
		// Idempotent GETs retry exactly once after a short backoff: a
		// connection refused (server restarting) or a 5xx is routinely
		// transient, and a GET repeated carries no side effects. The
		// backoff runs on the injected clock — a scaled harness clock
		// compresses it with the rest of the simulation — and the
		// caller's context still governs the whole exchange.
		if resp != nil {
			resp.Body.Close()
		}
		if serr := c.clk.Sleep(req.Context(), retryDelay); serr != nil {
			return fmt.Errorf("rest client: %w", serr)
		}
		resp, err = c.http.Do(req.Clone(req.Context()))
	}
	if err != nil {
		return fmt.Errorf("rest client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("rest client: %s %s: status %d: %s", req.Method, req.URL.Path, resp.StatusCode, eb.Error)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rest client: decode response: %w", err)
	}
	return nil
}

// retryable reports whether a first attempt is worth one retry: only GETs
// (idempotent, bodyless), and only on connection-level errors or 5xx.
func retryable(req *http.Request, resp *http.Response, err error) bool {
	if req.Method != http.MethodGet || req.Context().Err() != nil {
		return false
	}
	if err != nil {
		// Connection-level failure (refused, reset) — not a ctx timeout.
		return true
	}
	return resp.StatusCode >= 500
}
