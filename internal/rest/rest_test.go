package rest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// restEnv spins up all three services over a deployed cluster.
type restEnv struct {
	srv     *httptest.Server
	client  *Client
	cloud   *simaws.Cloud
	cluster *upgrade.Cluster
	ctx     context.Context
}

func newRESTEnv(t *testing.T) *restEnv {
	t.Helper()
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	profile := simaws.FastProfile()
	profile.BootTime = clock.Fixed(time.Second)
	profile.TickInterval = 200 * time.Millisecond
	cloud := simaws.New(clk, profile, simaws.WithSeed(8))
	cloud.Start()
	t.Cleanup(cloud.Stop)

	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", 2, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	client := consistentapi.New(cloud, consistentapi.Config{
		MaxAttempts: 3, InitialBackoff: 50 * time.Millisecond,
		MaxBackoff: time.Second, CallTimeout: 20 * time.Second,
	})
	eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), nil)
	checker := conformance.NewChecker(process.RollingUpgradeModel())
	diag := diagnosis.NewEngine(faulttree.FullCatalog(), eval, nil, diagnosis.Options{})
	srv := httptest.NewServer(NewServer(checker, eval, diag))
	t.Cleanup(srv.Close)
	return &restEnv{
		srv: srv, client: NewClient(srv.URL, nil),
		cloud: cloud, cluster: cluster, ctx: ctx,
	}
}

func TestHealthz(t *testing.T) {
	e := newRESTEnv(t)
	if !e.client.Healthy(e.ctx) {
		t.Fatal("server not healthy")
	}
}

func TestConformanceEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	res, err := e.client.CheckConformance(e.ctx, ConformanceRequest{
		TraceID: "task-1",
		Line:    "Starting rolling upgrade of group pm--asg to image ami-2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != conformance.VerdictFit {
		t.Fatalf("verdict = %s", res.Verdict)
	}
	// Out-of-order line is unfit, with context crossing the wire.
	res, err = e.client.CheckConformance(e.ctx, ConformanceRequest{
		TraceID: "task-1",
		Line:    "Terminating old instance i-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != conformance.VerdictUnfit || res.Context == nil {
		t.Fatalf("res = %+v", res)
	}
	ids, err := e.client.Instances(e.ctx)
	if err != nil || len(ids) != 1 || ids[0] != "task-1" {
		t.Fatalf("instances = %v, %v", ids, err)
	}
}

func TestConformanceValidation(t *testing.T) {
	e := newRESTEnv(t)
	_, err := e.client.CheckConformance(e.ctx, ConformanceRequest{TraceID: "", Line: ""})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	res, err := e.client.Evaluate(e.ctx, EvaluateRequest{
		CheckID: assertion.CheckASGInstanceCount,
		Params: assertion.Params{
			assertion.ParamASG:  e.cluster.ASGName,
			assertion.ParamWant: "2",
		},
		Trigger: assertion.Trigger{Source: assertion.TriggerOnDemand},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("result = %+v", res)
	}
	checks, err := e.client.Checks(e.ctx)
	if err != nil || len(checks) < 15 {
		t.Fatalf("checks = %d, %v", len(checks), err)
	}
}

func TestEvaluateValidation(t *testing.T) {
	e := newRESTEnv(t)
	if _, err := e.client.Evaluate(e.ctx, EvaluateRequest{}); err == nil {
		t.Fatal("empty evaluate accepted")
	}
}

func TestDiagnosisEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	// Break the configuration, then diagnose over the wire.
	rogueAMI, _ := e.cloud.RegisterImage(e.ctx, "rogue", "v9", nil)
	_ = e.cloud.CreateLaunchConfiguration(e.ctx, simaws.LaunchConfig{
		Name: "rogue-lc", ImageID: rogueAMI, KeyName: e.cluster.KeyName,
		SecurityGroups: []string{e.cluster.SGName}, InstanceType: "m1.small",
	})
	_ = e.cloud.UpdateAutoScalingGroup(e.ctx, e.cluster.ASGName, "rogue-lc", -1, -1, -1)

	d, err := e.client.Diagnose(e.ctx, diagnosis.Request{
		AssertionID:       assertion.CheckASGVersionCount,
		Source:            diagnosis.SourceAssertion,
		ProcessInstanceID: "task-1",
		StepID:            process.StepNewReady,
		Params: assertion.Params{
			assertion.ParamASG:          e.cluster.ASGName,
			assertion.ParamELB:          e.cluster.ELBName,
			assertion.ParamAMI:          e.cluster.ImageID,
			assertion.ParamKeyPair:      e.cluster.KeyName,
			assertion.ParamSG:           e.cluster.SGName,
			assertion.ParamInstanceType: "m1.small",
			assertion.ParamVersion:      "v1",
			assertion.ParamWant:         "2",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Conclusion != diagnosis.ConclusionIdentified {
		t.Fatalf("conclusion = %s", d.Conclusion)
	}
	if !d.HasCause("wrong-ami") {
		t.Fatalf("causes = %+v", d.RootCauses)
	}
	if len(d.TestsRun) == 0 {
		t.Error("no tests returned over the wire")
	}
}

func TestModelEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	resp, err := http.Get(e.srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestNilComponentsReturn503(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil, nil, nil))
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	ctx := context.Background()
	if _, err := c.CheckConformance(ctx, ConformanceRequest{TraceID: "t", Line: "x"}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("conformance err = %v", err)
	}
	if _, err := c.Evaluate(ctx, EvaluateRequest{CheckID: "x"}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("evaluate err = %v", err)
	}
	if _, err := c.Diagnose(ctx, diagnosis.Request{}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("diagnose err = %v", err)
	}
	if c.Healthy(ctx) != true {
		t.Error("healthz should still work")
	}
}

func TestBadJSONRejected(t *testing.T) {
	e := newRESTEnv(t)
	resp, err := http.Post(e.srv.URL+"/conformance/check", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Unknown fields are rejected too.
	resp2, err := http.Post(e.srv.URL+"/conformance/check", "application/json",
		strings.NewReader(`{"traceId":"t","line":"x","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field status = %d", resp2.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	_, err := e.client.CheckConformance(e.ctx, ConformanceRequest{
		TraceID: "t", Line: "Starting rolling upgrade of group g to image ami-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.client.Stats(e.ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 1 || stats.Fit != 1 || stats.Fitness != 1.0 || stats.Completed {
		t.Fatalf("stats = %+v", stats)
	}
	if _, err := e.client.Stats(e.ctx, ""); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestDiagnosisPlanEndpoints(t *testing.T) {
	e := newRESTEnv(t)
	plans, err := e.client.Plans(e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]PlanSummary, len(plans))
	for _, p := range plans {
		byID[p.ID] = p
	}
	bg, ok := byID["plan-bluegreen"]
	if !ok {
		t.Fatalf("plan-bluegreen missing from listing: %+v", plans)
	}
	if bg.AssertionID != "asg-version-count" || bg.Causes == 0 {
		t.Fatalf("plan-bluegreen summary = %+v", bg)
	}
	if _, ok := byID["ft-version-count"]; !ok {
		t.Fatal("compiled tree plans missing from listing")
	}

	p, err := e.client.Plan(e.ctx, "plan-bluegreen")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "bg-version-violated" || len(p.Nodes) != bg.Nodes {
		t.Fatalf("plan body = entry %q, %d nodes", p.Entry, len(p.Nodes))
	}

	dot, err := e.client.PlanDOT(e.ctx, "plan-bluegreen")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "bg-version-violated") {
		t.Fatalf("dot render = %.80q", dot)
	}

	if _, err := e.client.Plan(e.ctx, "no-such-plan"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown plan: err = %v, want 404", err)
	}
	resp, err := http.Get(e.srv.URL + "/diagnosis/plans/plan-bluegreen?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: status %d, want 400", resp.StatusCode)
	}
}

func TestDiagnosisConfigEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	resp, err := http.Get(e.srv.URL + "/diagnosis/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var cfg DiagnosisConfig
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 1 {
		t.Errorf("workers = %d, want the sequential default 1", cfg.Workers)
	}
	if cfg.MaxTests != 64 {
		t.Errorf("maxTests = %d, want the default 64", cfg.MaxTests)
	}
	// FastProfile permits no stale reads, so the shared cache exists but
	// its consistency-window TTL is zero.
	if cfg.SharedCache == nil {
		t.Fatal("shared cache stats missing")
	}
	if cfg.SharedCacheTTL != "0s" {
		t.Errorf("ttl = %s, want 0s under FastProfile", cfg.SharedCacheTTL)
	}

	srv := httptest.NewServer(NewServer(nil, nil, nil))
	defer srv.Close()
	resp2, err := http.Get(srv.URL + "/diagnosis/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil-engine status = %d", resp2.StatusCode)
	}
}
