package rest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/core"
	"poddiagnosis/internal/obs/flight"
)

// seedTimeline registers a session and records a minimal deterministic
// evidence chain (log event -> detection -> confirmed cause) with
// explicit timestamps, so the wire format can be golden-tested.
func seedTimeline(t *testing.T, e *opsEnv) {
	t.Helper()
	if _, err := e.mgr.Watch(core.Expectation{ASGName: "asg-tl", ClusterSize: 2},
		core.WithSessionID("op-tl"), core.BindInstance("task-tl")); err != nil {
		t.Fatal(err)
	}
	op := e.mgr.Flight().Op("op-tl")
	base := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	op.Record(flight.Entry{
		Kind: flight.KindLogEvent, At: base.Add(1 * time.Second),
		Seq: 4, Cause: 9, Message: "asg update requested",
	})
	op.Record(flight.Entry{
		Kind: flight.KindDetection, At: base.Add(2 * time.Second),
		Parents: []uint64{1}, Message: "capacity below minimum",
		Attrs: map[string]string{"source": "assertion"},
	})
	op.Record(flight.Entry{
		Kind: flight.KindCause, At: base.Add(3 * time.Second),
		Parents: []uint64{2}, Message: "confirmed cause: key pair changed",
		Attrs: map[string]string{"confirmed": "true", "node": "wrong-key"},
	})
}

// TestOperationTimelineGoldenShape pins the exact JSON wire format of
// GET /operations/{id}/timeline: field names, omitempty behaviour and
// entry ordering are API surface that podctl and external consumers
// parse.
func TestOperationTimelineGoldenShape(t *testing.T) {
	e := newOpsEnv(t)
	seedTimeline(t, e)

	resp, err := http.Get(e.base + "/operations/op-tl/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, body); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	golden := `{"operation":"op-tl","entries":[` +
		`{"id":1,"kind":"log.event","at":"2013-11-19T11:00:01Z","seq":4,"cause":9,"message":"asg update requested"},` +
		`{"id":2,"parents":[1],"kind":"detection","at":"2013-11-19T11:00:02Z","message":"capacity below minimum","attrs":{"source":"assertion"}},` +
		`{"id":3,"parents":[2],"kind":"diagnosis.cause","at":"2013-11-19T11:00:03Z","message":"confirmed cause: key pair changed","attrs":{"confirmed":"true","node":"wrong-key"}}` +
		`]}`
	if got := compact.String(); got != golden {
		t.Errorf("timeline JSON shape drifted:\n got: %s\nwant: %s", got, golden)
	}
}

// TestOperationTimelineKindFilter exercises ?kind= filtering (repeatable
// and comma-separated), unknown-kind rejection, and the client helper.
func TestOperationTimelineKindFilter(t *testing.T) {
	e := newOpsEnv(t)
	seedTimeline(t, e)

	tl, err := e.client.OperationTimeline(e.ctx, "op-tl")
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Entries) != 3 || tl.Operation != "op-tl" {
		t.Fatalf("unfiltered timeline = %+v", tl)
	}

	tl, err = e.client.OperationTimeline(e.ctx, "op-tl", string(flight.KindDetection))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Entries) != 1 || tl.Entries[0].Kind != flight.KindDetection {
		t.Fatalf("kind=detection timeline = %+v", tl)
	}

	// Comma-separated kinds in one parameter.
	resp, err := http.Get(e.base + "/operations/op-tl/timeline?kind=detection,diagnosis.cause")
	if err != nil {
		t.Fatal(err)
	}
	var got flight.Timeline
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got.Entries) != 2 {
		t.Fatalf("comma-separated filter entries = %+v", got.Entries)
	}

	// Unknown kinds are a 400, not a silently empty timeline.
	if _, err := e.client.OperationTimeline(e.ctx, "op-tl", "bogus"); err == nil ||
		!strings.Contains(err.Error(), "status 400") {
		t.Fatalf("unknown kind error = %v", err)
	}
	// Unknown operations are a 404.
	if _, err := e.client.OperationTimeline(e.ctx, "nope"); err == nil ||
		!strings.Contains(err.Error(), "status 404") {
		t.Fatalf("unknown operation error = %v", err)
	}
}
