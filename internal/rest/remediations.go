package rest

import (
	"errors"
	"fmt"
	"net/http"

	"poddiagnosis/internal/remediate"
)

// errNoRemediation is returned by the remediation endpoints when the
// attached manager runs with remediation disabled (or no manager at all).
var errNoRemediation = errors.New("remediation not configured")

// remediator resolves the manager's remediation engine, writing the 503
// itself when remediation is not configured.
func (s *Server) remediator(w http.ResponseWriter) *remediate.Engine {
	if s.mgr == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoManager)
		return nil
	}
	eng := s.mgr.Remediator()
	if eng == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoRemediation)
		return nil
	}
	return eng
}

// handleOperationRemediations serves GET /operations/{id}/remediations:
// the remediations admitted for one operation's confirmed causes, in
// admission order, including pending approvals and dry-run records.
func (s *Server) handleOperationRemediations(w http.ResponseWriter, r *http.Request) {
	eng := s.remediator(w)
	if eng == nil {
		return
	}
	if sess := s.operation(w, r); sess == nil {
		return
	}
	rs := eng.List(r.PathValue("id"))
	if rs == nil {
		rs = []remediate.Remediation{}
	}
	writeJSON(w, http.StatusOK, rs)
}

// handleRemediationApprove serves POST /remediations/{id}/approve:
// executes a pending (approve-mode) remediation. A double approve is a
// 409; an unknown or garbage-collected id a 404.
func (s *Server) handleRemediationApprove(w http.ResponseWriter, r *http.Request) {
	eng := s.remediator(w)
	if eng == nil {
		return
	}
	id := r.PathValue("id")
	rm, err := eng.Approve(r.Context(), id)
	switch {
	case errors.Is(err, remediate.ErrNotFound):
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such remediation: %s", id))
	case errors.Is(err, remediate.ErrNotPending):
		writeErr(w, http.StatusConflict, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, rm)
	}
}
