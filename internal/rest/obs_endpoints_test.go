package rest

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"poddiagnosis/internal/obs"
)

func TestMetricsEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	// Drive one request through an instrumented route first.
	if !e.client.Healthy(e.ctx) {
		t.Fatal("server not healthy")
	}
	resp, err := http.Get(e.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	// The environment deploys a cluster, so simaws counters must be hot;
	// the healthz request above must appear in the HTTP metrics.
	for _, want := range []string{
		"# TYPE pod_simaws_api_calls_total counter",
		`pod_simaws_api_calls_total{op="CreateAutoScalingGroup"}`,
		`pod_http_requests_total{route="healthz",class="2xx"}`,
		`pod_http_request_seconds_bucket{route="healthz",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	e := newRESTEnv(t)
	if !e.client.Healthy(e.ctx) {
		t.Fatal("server not healthy")
	}
	resp, err := http.Get(e.srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Spans []obs.SpanData `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range body.Spans {
		if s.Name == "http.healthz" {
			found = true
		}
	}
	if !found {
		t.Errorf("no http.healthz span among %d spans", len(body.Spans))
	}
}

func TestReadyzDefaultAndCustom(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default readyz status = %d", resp.StatusCode)
	}

	notReady := httptest.NewServer(NewServer(nil, nil, nil, WithReady(func() ReadyStatus {
		return ReadyStatus{Ready: false, QueueDepth: 17, Detail: "draining"}
	})))
	defer notReady.Close()
	resp2, err := http.Get(notReady.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("not-ready status = %d", resp2.StatusCode)
	}
	var st ReadyStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || st.QueueDepth != 17 || st.Detail != "draining" {
		t.Fatalf("status = %+v", st)
	}
}

func TestUnknownPathReturnsJSON404(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/no/such/endpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "/no/such/endpoint") {
		t.Errorf("error body = %+v", eb)
	}
}

func TestRequestMetricsCountStatusClasses(t *testing.T) {
	e := newRESTEnv(t)
	// One 400 on a known route.
	resp, err := http.Post(e.srv.URL+"/conformance/check", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body, err := http.Get(e.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer body.Body.Close()
	text, _ := io.ReadAll(body.Body)
	if !strings.Contains(string(text), `pod_http_requests_total{route="conformance_check",class="4xx"}`) {
		t.Error("4xx class not counted for conformance_check")
	}
}
