package rest

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// opsEnv is a live Manager fronted by the REST server.
type opsEnv struct {
	clk    *clock.Scaled
	bus    *logging.Bus
	cloud  *simaws.Cloud
	mgr    *core.Manager
	client *Client
	base   string
	ctx    context.Context
}

func newOpsEnv(t *testing.T) *opsEnv {
	t.Helper()
	clk := clock.NewScaled(1200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.TickInterval = time.Second
	cloud := simaws.New(clk, profile, simaws.WithSeed(17), simaws.WithBus(bus))
	cloud.Start()
	mgr, err := core.NewManager(core.ManagerConfig{
		Cloud: cloud,
		Bus:   bus,
		API: consistentapi.Config{
			MaxAttempts:    3,
			InitialBackoff: 500 * time.Millisecond,
			MaxBackoff:     4 * time.Second,
			CallTimeout:    30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	srv := httptest.NewServer(NewServer(mgr.Checker(), mgr.Evaluator(), mgr.Diagnoser(), WithManager(mgr)))
	t.Cleanup(func() { srv.Close(); mgr.Stop(); cloud.Stop(); bus.Close() })
	return &opsEnv{
		clk: clk, bus: bus, cloud: cloud, mgr: mgr,
		client: NewClient(srv.URL, nil), base: srv.URL, ctx: context.Background(),
	}
}

// TestOperationsRoundTrip registers a session over HTTP, runs a faulted
// rolling upgrade under it, and reads the detections back over HTTP.
func TestOperationsRoundTrip(t *testing.T) {
	e := newOpsEnv(t)

	cluster, err := upgrade.Deploy(e.ctx, e.cloud, "pm", 2, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(e.ctx, e.cloud, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	newAMI, err := e.cloud.RegisterImage(e.ctx, "pm-v2", "v2", upgrade.AppServices)
	if err != nil {
		t.Fatal(err)
	}
	taskID := "pushing " + cluster.ASGName
	spec := cluster.UpgradeSpec(taskID, newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI
	spec.WaitTimeout = 5 * time.Minute
	spec.PollInterval = 5 * time.Second

	// Register the monitoring session over the wire.
	sum, err := e.client.CreateOperation(e.ctx, OperationRequest{
		ID: "push-pm",
		Expect: core.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  2,
		},
		InstanceIDs: []string{taskID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ID != "push-pm" || sum.State != core.SessionActive {
		t.Fatalf("created operation = %+v", sum)
	}
	// Duplicate registration is rejected with a client-visible error.
	if _, err := e.client.CreateOperation(e.ctx, OperationRequest{
		ID:     "push-pm",
		Expect: core.Expectation{ASGName: cluster.ASGName, ClusterSize: 2},
	}); err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("duplicate id error = %v", err)
	}

	ops, err := e.client.Operations(e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].ID != "push-pm" {
		t.Fatalf("operations list = %+v", ops)
	}
	if _, err := e.client.Operation(e.ctx, "nope"); err == nil || !strings.Contains(err.Error(), "status 404") {
		t.Fatalf("unknown id error = %v", err)
	}

	// Run the upgrade with a key-pair fault injected mid-flight.
	inj := faultinject.NewInjector(e.cloud, cluster, 7)
	defer inj.Heal()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = inj.Inject(e.ctx, faultinject.KindKeyPairChanged, 10*time.Second, spec.NewLCName, newAMI)
	}()
	upgrade.NewUpgrader(e.cloud, e.bus).Run(e.ctx, spec)
	wg.Wait()
	e.mgr.Drain(e.ctx, 2*time.Minute)

	dets, err := e.client.OperationDetections(e.ctx, "push-pm")
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("no detections over REST after faulted upgrade")
	}
	for _, d := range dets {
		if d.Operation != "push-pm" {
			t.Errorf("detection labelled %q, want push-pm", d.Operation)
		}
		if d.InstanceID != taskID {
			t.Errorf("detection references foreign instance %q", d.InstanceID)
		}
	}

	// Readiness aggregates the per-session backlog.
	ready, err := e.client.Ready(e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ready.Ready {
		t.Fatalf("ready = %+v", ready)
	}
	if _, ok := ready.PerOperation["push-pm"]; !ok {
		t.Fatalf("readyz missing per-operation backlog: %+v", ready)
	}

	// Removal over the wire is immediate and idempotent-false.
	if err := e.client.RemoveOperation(e.ctx, "push-pm"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.Operation(e.ctx, "push-pm"); err == nil || !strings.Contains(err.Error(), "status 404") {
		t.Fatalf("removed operation still served: %v", err)
	}
	if err := e.client.RemoveOperation(e.ctx, "push-pm"); err == nil || !strings.Contains(err.Error(), "status 404") {
		t.Fatalf("second remove error = %v", err)
	}
}

// TestOperationsWithoutManager checks the endpoints degrade to 503 when
// the server has no manager attached.
func TestOperationsWithoutManager(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil, nil, nil))
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	ctx := context.Background()
	if _, err := client.Operations(ctx); err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Fatalf("list without manager: %v", err)
	}
	if _, err := client.CreateOperation(ctx, OperationRequest{}); err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Fatalf("create without manager: %v", err)
	}
	if _, err := client.OperationDetections(ctx, "x"); err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Fatalf("detections without manager: %v", err)
	}
	if _, err := client.OperationTimeline(ctx, "x"); err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Fatalf("timeline without manager: %v", err)
	}
	if err := client.RemoveOperation(ctx, "x"); err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Fatalf("remove without manager: %v", err)
	}
}
