package rest

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"poddiagnosis/internal/core"
	"poddiagnosis/internal/obs/flight"
)

// OperationRequest is the body of POST /operations: it registers a new
// monitoring session with the manager, mirroring core.Manager.Watch.
type OperationRequest struct {
	// ID names the session; empty means a generated op-N id.
	ID string `json:"id,omitempty"`
	// Expect declares the operation's desired end state.
	Expect core.Expectation `json:"expect"`
	// InstanceIDs pre-binds process instance ids (e.g. upgrade task ids)
	// to the session. A bind-only session auto-ends when every bound
	// instance's process completes.
	InstanceIDs []string `json:"instanceIds,omitempty"`
	// MatchASG adopts unknown process instances that reference the
	// expectation's ASG.
	MatchASG bool `json:"matchAsg,omitempty"`
	// MatchAny adopts every unclaimed process instance (single-operation
	// compatibility mode).
	MatchAny bool `json:"matchAny,omitempty"`
	// AssertionSpec overrides the manager's default assertion
	// specification for this session.
	AssertionSpec string `json:"assertionSpec,omitempty"`
	// MaxDetections overrides the per-session detection cap.
	MaxDetections int `json:"maxDetections,omitempty"`
}

// errNoManager is returned by the operation endpoints when the server was
// built without WithManager.
var errNoManager = errors.New("operation management not configured")

func (s *Server) handleOperationCreate(w http.ResponseWriter, r *http.Request) {
	if s.front != nil {
		s.handleFrontOperationCreate(w, r)
		return
	}
	if s.mgr == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	var req OperationRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var opts []core.WatchOption
	if req.ID != "" {
		opts = append(opts, core.WithSessionID(req.ID))
	}
	if len(req.InstanceIDs) > 0 {
		opts = append(opts, core.BindInstance(req.InstanceIDs...))
	}
	if req.MatchASG {
		opts = append(opts, core.MatchASGInstances())
	}
	if req.MatchAny {
		opts = append(opts, core.MatchAnyInstance())
	}
	if req.AssertionSpec != "" {
		opts = append(opts, core.WithAssertionSpec(req.AssertionSpec))
	}
	if req.MaxDetections > 0 {
		opts = append(opts, core.WithMaxDetections(req.MaxDetections))
	}
	sess, err := s.mgr.Watch(req.Expect, opts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Summary())
}

func (s *Server) handleOperationList(w http.ResponseWriter, r *http.Request) {
	if s.front != nil {
		s.handleFrontOperationList(w, r)
		return
	}
	if s.mgr == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	sessions := s.mgr.Sessions()
	out := make([]core.SessionSummary, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.Summary())
	}
	writeJSON(w, http.StatusOK, out)
}

// operation resolves the {id} path value to a session, writing the error
// response itself when the manager is absent or the id is unknown.
func (s *Server) operation(w http.ResponseWriter, r *http.Request) *core.Session {
	if s.mgr == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoManager)
		return nil
	}
	id := r.PathValue("id")
	sess := s.mgr.Session(id)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such operation: %s", id))
	}
	return sess
}

func (s *Server) handleOperationGet(w http.ResponseWriter, r *http.Request) {
	if s.front != nil {
		s.handleFrontOperationGet(w, r)
		return
	}
	if sess := s.operation(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.Summary())
	}
}

func (s *Server) handleOperationDetections(w http.ResponseWriter, r *http.Request) {
	if s.front != nil {
		s.handleFrontOperationDetections(w, r)
		return
	}
	sess := s.operation(w, r)
	if sess == nil {
		return
	}
	ds := sess.Detections()
	if ds == nil {
		ds = []core.Detection{}
	}
	writeJSON(w, http.StatusOK, ds)
}

// handleOperationTimeline serves GET /operations/{id}/timeline: the
// operation's causal flight-recorder timeline. Repeatable (or
// comma-separated) ?kind= query parameters restrict the entries to the
// named event kinds; unknown kinds are a 400 so typos don't silently
// return an empty timeline.
func (s *Server) handleOperationTimeline(w http.ResponseWriter, r *http.Request) {
	if s.front != nil {
		s.handleFrontOperationTimeline(w, r)
		return
	}
	sess := s.operation(w, r)
	if sess == nil {
		return
	}
	var kinds []flight.Kind
	for _, raw := range r.URL.Query()["kind"] {
		for _, part := range strings.Split(raw, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			k := flight.Kind(part)
			if !flight.KnownKind(k) {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown timeline kind %q (known: %v)", part, flight.Kinds()))
				return
			}
			kinds = append(kinds, k)
		}
	}
	writeJSON(w, http.StatusOK, sess.Timeline(kinds...))
}

func (s *Server) handleOperationDelete(w http.ResponseWriter, r *http.Request) {
	if s.front != nil {
		s.handleFrontOperationDelete(w, r)
		return
	}
	if s.mgr == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	id := r.PathValue("id")
	if !s.mgr.Remove(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such operation: %s", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

// managerReady is the default readiness probe installed by WithManager: it
// aggregates the shared backlog plus every session's queued and in-flight
// work into the per-operation breakdown.
func managerReady(m *core.Manager) func() ReadyStatus {
	return func() ReadyStatus {
		q := m.QueueDepth()
		return ReadyStatus{
			Ready:        true,
			QueueDepth:   q.Depth(),
			PerOperation: q.Sessions,
		}
	}
}
