package rest

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/federate"
	"poddiagnosis/internal/obs/flight"
)

// WithFront attaches a federation front: the server then serves the
// /federation/* membership endpoints and proxies the /operations
// surface through the front to whichever member currently owns each
// operation, so clients keep one base URL across handoffs.
func WithFront(f *federate.Front) Option {
	return func(s *Server) { s.front = f }
}

// WithMemberFactory overrides how the front server turns a join
// request into a federate.Member (default: a REST-backed
// FederationMember dialing the advertised base URL). Tests inject
// in-process members here.
func WithMemberFactory(fn func(id, base string) federate.Member) Option {
	return func(s *Server) { s.memberFactory = fn }
}

// FederationJoinRequest is the body of POST /federation/join: a member
// advertises itself to the front.
type FederationJoinRequest struct {
	// ID is the member's federation identity.
	ID string `json:"id"`
	// Base is the member's own REST base URL, which the front dials for
	// handoffs and proxy reads.
	Base string `json:"base"`
}

// FederationJoinResponse returns the lease epoch granted by the join;
// every renewal must carry it.
type FederationJoinResponse struct {
	Epoch uint64 `json:"epoch"`
}

// FederationRenewRequest is the body of POST /federation/renew.
type FederationRenewRequest struct {
	ID      string           `json:"id"`
	Epoch   uint64           `json:"epoch"`
	Renewal federate.Renewal `json:"renewal"`
}

// FederationRouteResponse is the body of GET /federation/route/{id}.
type FederationRouteResponse struct {
	// Owner is the member currently owning the operation.
	Owner string `json:"owner"`
	// Epoch is the operation's handoff epoch.
	Epoch uint64 `json:"epoch"`
}

var errNoFront = errors.New("federation front not configured")

func (s *Server) handleFederationJoin(w http.ResponseWriter, r *http.Request) {
	if s.front == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoFront)
		return
	}
	var req FederationJoinRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" || req.Base == "" {
		writeErr(w, http.StatusBadRequest, errors.New("id and base are required"))
		return
	}
	factory := s.memberFactory
	if factory == nil {
		factory = func(id, base string) federate.Member {
			return NewFederationMember(id, base, nil)
		}
	}
	epoch, err := s.front.Join(factory(req.ID, req.Base))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, FederationJoinResponse{Epoch: epoch})
}

func (s *Server) handleFederationRenew(w http.ResponseWriter, r *http.Request) {
	if s.front == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoFront)
		return
	}
	var req FederationRenewRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("id is required"))
		return
	}
	writeJSON(w, http.StatusOK, s.front.Renew(req.ID, req.Epoch, req.Renewal))
}

func (s *Server) handleFederationMembers(w http.ResponseWriter, r *http.Request) {
	if s.front == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoFront)
		return
	}
	writeJSON(w, http.StatusOK, s.front.Members())
}

func (s *Server) handleFederationRoute(w http.ResponseWriter, r *http.Request) {
	if s.front == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoFront)
		return
	}
	id := r.PathValue("id")
	owner, epoch, ok := s.front.Owner(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such operation: %s", id))
		return
	}
	writeJSON(w, http.StatusOK, FederationRouteResponse{Owner: owner, Epoch: epoch})
}

// handleOperationExport serves GET /operations/{id}/export on member
// servers: the graceful half of a federation handoff.
func (s *Server) handleOperationExport(w http.ResponseWriter, r *http.Request) {
	if s.mgr == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	snap, err := s.mgr.ExportSession(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleOperationRestore serves POST /operations/restore on member
// servers: the adopting half of a federation handoff.
func (s *Server) handleOperationRestore(w http.ResponseWriter, r *http.Request) {
	if s.mgr == nil {
		writeErr(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	var snap core.SessionSnapshot
	if err := decode(r, &snap); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.mgr.RestoreSession(&snap)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Summary())
}

// Front-proxied /operations handlers: the server answers from the
// federation instead of a local manager.

func (s *Server) handleFrontOperationCreate(w http.ResponseWriter, r *http.Request) {
	var req OperationRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sum, _, err := s.front.Watch(r.Context(), federate.WatchRequest{
		ID:            req.ID,
		Expect:        req.Expect,
		InstanceIDs:   req.InstanceIDs,
		MatchASG:      req.MatchASG,
		MatchAny:      req.MatchAny,
		AssertionSpec: req.AssertionSpec,
		MaxDetections: req.MaxDetections,
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, sum)
}

func (s *Server) handleFrontOperationList(w http.ResponseWriter, r *http.Request) {
	out := s.front.Operations(r.Context())
	if out == nil {
		out = []core.SessionSummary{}
	}
	writeJSON(w, http.StatusOK, out)
}

// frontRoute resolves {id} through the front, writing the 404 itself.
func (s *Server) frontRoute(w http.ResponseWriter, r *http.Request) (federate.Member, string) {
	id := r.PathValue("id")
	m, ok := s.front.Route(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such operation: %s", id))
		return nil, id
	}
	return m, id
}

func (s *Server) handleFrontOperationGet(w http.ResponseWriter, r *http.Request) {
	m, id := s.frontRoute(w, r)
	if m == nil {
		return
	}
	sum, err := m.Operation(r.Context(), id)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleFrontOperationDetections(w http.ResponseWriter, r *http.Request) {
	m, id := s.frontRoute(w, r)
	if m == nil {
		return
	}
	ds, err := m.Detections(r.Context(), id)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	if ds == nil {
		ds = []core.Detection{}
	}
	writeJSON(w, http.StatusOK, ds)
}

func (s *Server) handleFrontOperationTimeline(w http.ResponseWriter, r *http.Request) {
	m, id := s.frontRoute(w, r)
	if m == nil {
		return
	}
	tl, err := m.Timeline(r.Context(), id)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, tl)
}

func (s *Server) handleFrontOperationDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.front.Remove(r.Context(), id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

// FederationMember is a federate.Member backed by a member server's
// REST API: the front drives remote podserve members through it.
type FederationMember struct {
	id string
	c  *Client
}

var _ federate.Member = (*FederationMember)(nil)

// NewFederationMember returns a Member proxying to the member server at
// base. A nil httpClient uses the 30s-timeout default.
func NewFederationMember(id, base string, httpClient *http.Client, opts ...ClientOption) *FederationMember {
	return &FederationMember{id: id, c: NewClient(base, httpClient, opts...)}
}

// ID implements federate.Member.
func (m *FederationMember) ID() string { return m.id }

// Watch implements federate.Member.
func (m *FederationMember) Watch(ctx context.Context, req federate.WatchRequest) (core.SessionSummary, error) {
	return m.c.CreateOperation(ctx, OperationRequest{
		ID:            req.ID,
		Expect:        req.Expect,
		InstanceIDs:   req.InstanceIDs,
		MatchASG:      req.MatchASG,
		MatchAny:      req.MatchAny,
		AssertionSpec: req.AssertionSpec,
		MaxDetections: req.MaxDetections,
	})
}

// Export implements federate.Member.
func (m *FederationMember) Export(ctx context.Context, opID string) (*core.SessionSnapshot, error) {
	return m.c.ExportOperation(ctx, opID)
}

// Restore implements federate.Member.
func (m *FederationMember) Restore(ctx context.Context, snap *core.SessionSnapshot) error {
	_, err := m.c.RestoreOperation(ctx, snap)
	return err
}

// Remove implements federate.Member.
func (m *FederationMember) Remove(ctx context.Context, opID string) error {
	return m.c.RemoveOperation(ctx, opID)
}

// Operation implements federate.Member.
func (m *FederationMember) Operation(ctx context.Context, opID string) (core.SessionSummary, error) {
	return m.c.Operation(ctx, opID)
}

// Detections implements federate.Member.
func (m *FederationMember) Detections(ctx context.Context, opID string) ([]core.Detection, error) {
	return m.c.OperationDetections(ctx, opID)
}

// Timeline implements federate.Member.
func (m *FederationMember) Timeline(ctx context.Context, opID string) (flight.Timeline, error) {
	return m.c.OperationTimeline(ctx, opID)
}

// FederationAgent is the member-process side of the lease protocol: it
// joins the front over REST, heartbeats renewals carrying the local
// manager's session snapshots, and — when told it is stale — drops the
// operations it lost and re-joins for a fresh epoch.
type FederationAgent struct {
	// ID is the member's federation identity.
	ID string
	// Base is this member's own advertised REST base URL.
	Base string
	// Manager is the local manager whose sessions the agent replicates.
	Manager *core.Manager
	// Front is a client to the front server.
	Front *Client

	mu    sync.Mutex
	epoch uint64
}

// Epoch returns the agent's current lease epoch.
func (a *FederationAgent) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Join advertises the member to the front and records the granted
// epoch.
func (a *FederationAgent) Join(ctx context.Context) error {
	epoch, err := a.Front.FederationJoin(ctx, a.ID, a.Base)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.epoch = epoch
	a.mu.Unlock()
	return nil
}

// RenewOnce sends one lease renewal with the manager's current backlog
// and session snapshots. A stale verdict drops the listed operations
// and re-joins.
func (a *FederationAgent) RenewOnce(ctx context.Context) error {
	renewal := federate.Renewal{Pending: a.Manager.QueueDepth().Depth()}
	for _, sess := range a.Manager.Sessions() {
		if snap, err := a.Manager.ExportSession(sess.ID()); err == nil {
			renewal.Snapshots = append(renewal.Snapshots, snap)
		}
	}
	res, err := a.Front.FederationRenew(ctx, a.ID, a.Epoch(), renewal)
	if err != nil {
		return err
	}
	if !res.Stale {
		return nil
	}
	for _, opID := range res.DropOps {
		a.Manager.Remove(opID)
	}
	return a.Join(ctx)
}

// Run heartbeats every interval on the manager's injected clock until
// the context ends. Renewal errors (front briefly unreachable) are
// retried on the next beat.
func (a *FederationAgent) Run(ctx context.Context, every time.Duration) {
	ticker := clock.NewTicker(a.Manager.Clock(), every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = a.RenewOnce(ctx)
		}
	}
}

// Client federation methods.

// ExportOperation fetches one session's handoff snapshot from a member
// server.
func (c *Client) ExportOperation(ctx context.Context, id string) (*core.SessionSnapshot, error) {
	var out core.SessionSnapshot
	if err := c.get(ctx, "/operations/"+url.PathEscape(id)+"/export", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RestoreOperation ships a handoff snapshot to a member server for
// adoption.
func (c *Client) RestoreOperation(ctx context.Context, snap *core.SessionSnapshot) (core.SessionSummary, error) {
	var out core.SessionSummary
	err := c.post(ctx, "/operations/restore", snap, &out)
	return out, err
}

// FederationJoin advertises a member to a front server and returns the
// granted lease epoch.
func (c *Client) FederationJoin(ctx context.Context, id, base string) (uint64, error) {
	var out FederationJoinResponse
	err := c.post(ctx, "/federation/join", FederationJoinRequest{ID: id, Base: base}, &out)
	return out.Epoch, err
}

// FederationRenew sends one lease renewal to a front server.
func (c *Client) FederationRenew(ctx context.Context, id string, epoch uint64, r federate.Renewal) (federate.RenewResult, error) {
	var out federate.RenewResult
	err := c.post(ctx, "/federation/renew", FederationRenewRequest{ID: id, Epoch: epoch, Renewal: r}, &out)
	return out, err
}

// FederationMembers lists a front server's membership.
func (c *Client) FederationMembers(ctx context.Context) ([]federate.MemberInfo, error) {
	var out []federate.MemberInfo
	err := c.get(ctx, "/federation/members", &out)
	return out, err
}

// FederationRoute resolves which member currently owns an operation.
func (c *Client) FederationRoute(ctx context.Context, opID string) (FederationRouteResponse, error) {
	var out FederationRouteResponse
	err := c.get(ctx, "/federation/route/"+url.PathEscape(opID), &out)
	return out, err
}

// FailoverClient fans one logical client across several base URLs
// (e.g. every front replica, or every member of a federation): each
// call starts at the last base that worked and rotates through the
// rest on error, so a dead server costs one failed attempt, not an
// outage.
type FailoverClient struct {
	mu      sync.Mutex
	clients []*Client
	cur     int
}

// NewFailoverClient builds a failover client over the given base URLs.
func NewFailoverClient(bases []string, httpClient *http.Client, opts ...ClientOption) (*FailoverClient, error) {
	if len(bases) == 0 {
		return nil, errors.New("rest client: at least one base URL is required")
	}
	f := &FailoverClient{}
	for _, b := range bases {
		f.clients = append(f.clients, NewClient(b, httpClient, opts...))
	}
	return f, nil
}

// Do runs fn against the preferred client, rotating to the next base
// on error until one succeeds or every base has failed (then the last
// error is returned).
func (f *FailoverClient) Do(fn func(*Client) error) error {
	f.mu.Lock()
	start := f.cur
	n := len(f.clients)
	f.mu.Unlock()
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if err := fn(f.clients[idx]); err != nil {
			lastErr = err
			continue
		}
		f.mu.Lock()
		f.cur = idx
		f.mu.Unlock()
		return nil
	}
	return lastErr
}

// CreateOperation registers an operation via the first reachable base.
func (f *FailoverClient) CreateOperation(ctx context.Context, req OperationRequest) (core.SessionSummary, error) {
	var out core.SessionSummary
	err := f.Do(func(c *Client) error {
		var err error
		out, err = c.CreateOperation(ctx, req)
		return err
	})
	return out, err
}

// Operations lists operations via the first reachable base.
func (f *FailoverClient) Operations(ctx context.Context) ([]core.SessionSummary, error) {
	var out []core.SessionSummary
	err := f.Do(func(c *Client) error {
		var err error
		out, err = c.Operations(ctx)
		return err
	})
	return out, err
}

// Operation fetches one operation via the first reachable base.
func (f *FailoverClient) Operation(ctx context.Context, id string) (core.SessionSummary, error) {
	var out core.SessionSummary
	err := f.Do(func(c *Client) error {
		var err error
		out, err = c.Operation(ctx, id)
		return err
	})
	return out, err
}

// OperationDetections fetches detections via the first reachable base.
func (f *FailoverClient) OperationDetections(ctx context.Context, id string) ([]core.Detection, error) {
	var out []core.Detection
	err := f.Do(func(c *Client) error {
		var err error
		out, err = c.OperationDetections(ctx, id)
		return err
	})
	return out, err
}

// OperationTimeline fetches a timeline via the first reachable base.
func (f *FailoverClient) OperationTimeline(ctx context.Context, id string, kinds ...string) (flight.Timeline, error) {
	var out flight.Timeline
	err := f.Do(func(c *Client) error {
		var err error
		out, err = c.OperationTimeline(ctx, id, kinds...)
		return err
	})
	return out, err
}
