package rest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
)

// flaky500 serves a 500 for the first n hits of each path, then succeeds.
type flaky500 struct {
	fails int32
	hits  int32
}

func (f *flaky500) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := atomic.AddInt32(&f.hits, 1)
	if n <= atomic.LoadInt32(&f.fails) {
		http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`["check-a"]`))
}

func fastRetry(t *testing.T) {
	t.Helper()
	old := retryDelay
	retryDelay = time.Millisecond
	t.Cleanup(func() { retryDelay = old })
}

func TestClientRetriesGETOnceOn5xx(t *testing.T) {
	fastRetry(t)
	h := &flaky500{fails: 1}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	checks, err := c.Checks(context.Background())
	if err != nil {
		t.Fatalf("GET after one 500: %v", err)
	}
	if len(checks) != 1 || checks[0] != "check-a" {
		t.Fatalf("checks = %v", checks)
	}
	if h.hits != 2 {
		t.Fatalf("server hits = %d, want 2 (original + one retry)", h.hits)
	}
}

func TestClientRetriesGETOnlyOnce(t *testing.T) {
	fastRetry(t)
	h := &flaky500{fails: 10}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.Checks(context.Background()); err == nil {
		t.Fatal("persistent 500 did not surface")
	}
	if h.hits != 2 {
		t.Fatalf("server hits = %d, want exactly 2", h.hits)
	}
}

func TestClientDoesNotRetryPOST(t *testing.T) {
	fastRetry(t)
	h := &flaky500{fails: 1}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	_, err := c.CreateOperation(context.Background(), OperationRequest{})
	if err == nil {
		t.Fatal("POST 500 did not surface")
	}
	if h.hits != 1 {
		t.Fatalf("server hits = %d; a non-idempotent POST was retried", h.hits)
	}
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	fastRetry(t)
	// A listener that is closed immediately: both attempts are refused, but
	// exactly two connection attempts must be made.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	c := NewClient(url, &http.Client{Timeout: time.Second})
	err := c.get(context.Background(), "/healthz", nil)
	if err == nil {
		t.Fatal("refused connection did not surface")
	}
	if !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientHonoursContextDeadline(t *testing.T) {
	fastRetry(t)
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	}))
	defer func() { close(blocked); srv.Close() }()
	c := NewClient(srv.URL, srv.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.get(ctx, "/slow", nil)
	if err == nil {
		t.Fatal("deadline did not surface")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("request outlived its deadline by %v", elapsed)
	}
	// A request whose context is already dead is not retried at all.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := c.get(dead, "/healthz", nil); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// countingClock counts Sleep calls so tests can prove the retry backoff
// runs on the injected clock, not a bare time.After.
type countingClock struct {
	clock.Clock
	sleeps atomic.Int32
}

func (c *countingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.sleeps.Add(1)
	return c.Clock.Sleep(ctx, d)
}

func TestClientRetryBackoffUsesInjectedClock(t *testing.T) {
	fastRetry(t)
	h := &flaky500{fails: 1}
	srv := httptest.NewServer(h)
	defer srv.Close()
	clk := &countingClock{Clock: clock.Wall}
	c := NewClient(srv.URL, srv.Client(), WithClientClock(clk))
	if _, err := c.Checks(context.Background()); err != nil {
		t.Fatalf("GET after one 500: %v", err)
	}
	if got := clk.sleeps.Load(); got != 1 {
		t.Fatalf("injected clock slept %d times, want 1 (the retry backoff)", got)
	}
	// A cancelled context aborts the backoff through the same clock.
	atomic.StoreInt32(&h.hits, 0)
	atomic.StoreInt32(&h.fails, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.get(ctx, "/healthz", nil); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
