package simaws

import (
	"time"

	"poddiagnosis/internal/clock"
)

// Profile configures the timing and reliability characteristics of the
// simulated cloud. Two presets are provided: Fast (unit tests) and Paper
// (calibrated against the latencies visible in the paper's log excerpts,
// where individual diagnostic API checks take ~70-90 ms).
type Profile struct {
	// APILatency is the latency of every API call.
	APILatency clock.Dist
	// BootTime is how long an instance stays pending before in-service.
	BootTime clock.Dist
	// TerminateTime is how long termination takes.
	TerminateTime clock.Dist
	// TickInterval is the reconciler period (also the snapshot cadence
	// for eventual consistency).
	TickInterval time.Duration
	// StaleProb is the probability that a describe call is served from a
	// stale snapshot instead of live state.
	StaleProb float64
	// StaleLag is how far behind a stale read lags.
	StaleLag clock.Dist
	// RatePerSecond and RateBurst configure the account-level API token
	// bucket. RatePerSecond of zero disables throttling.
	RatePerSecond float64
	RateBurst     float64
	// InstanceLimit is the account-wide cap on live instances. Zero means
	// unlimited.
	InstanceLimit int
}

// ConsistencyWindow returns the maximum staleness a describe call may
// observe under this profile: zero when stale reads are disabled,
// otherwise the stale-lag upper bound, capped by the snapshot retention
// age (reads are never served from snapshots older than that). An
// unbounded lag distribution (Max <= 0) also reduces to the retention
// cap. This is the safe upper bound for any cache layered on top of the
// cloud's describe results: an answer younger than the window is
// indistinguishable from one the cloud itself might serve.
func (p Profile) ConsistencyWindow() time.Duration {
	if p.StaleProb <= 0 {
		return 0
	}
	window := p.StaleLag.Max
	if window <= 0 || window > maxSnapshotAge {
		window = maxSnapshotAge
	}
	return window
}

// FastProfile returns a profile tuned for unit tests: sub-millisecond
// latencies, no staleness, no throttling.
func FastProfile() Profile {
	return Profile{
		APILatency:    clock.Fixed(0),
		BootTime:      clock.Fixed(10 * time.Millisecond),
		TerminateTime: clock.Fixed(5 * time.Millisecond),
		TickInterval:  time.Millisecond,
	}
}

// PaperProfile returns a profile calibrated to the paper's environment:
// ~80 ms API calls (the diagnosis log in §III.B.4 shows successive checks
// ~70-90 ms apart), minutes-scale instance boot ("the time taken by the
// replacement process for one instance is usually in the order of
// minutes"), mild eventual consistency, and an account instance limit that
// a co-tenant team can exhaust (§VI.A). Durations are in simulated time;
// run the cloud on a scaled clock to execute quickly.
func PaperProfile() Profile {
	return Profile{
		APILatency:    clock.Dist{Mean: 80 * time.Millisecond, StdDev: 25 * time.Millisecond, Min: 30 * time.Millisecond, Max: 400 * time.Millisecond},
		BootTime:      clock.Dist{Mean: 90 * time.Second, StdDev: 20 * time.Second, Min: 45 * time.Second, Max: 180 * time.Second},
		TerminateTime: clock.Dist{Mean: 20 * time.Second, StdDev: 5 * time.Second, Min: 8 * time.Second, Max: 45 * time.Second},
		TickInterval:  time.Second,
		StaleProb:     0.08,
		StaleLag:      clock.Dist{Mean: 3 * time.Second, StdDev: 2 * time.Second, Min: time.Second, Max: 10 * time.Second},
		RatePerSecond: 50,
		RateBurst:     100,
		InstanceLimit: 40,
	}
}
