package simaws

import (
	"context"
	"fmt"
)

// CreateLaunchConfiguration registers a launch configuration. Referenced
// resources are validated at creation time, as on AWS.
func (c *Cloud) CreateLaunchConfiguration(ctx context.Context, lc LaunchConfig) error {
	const op = "CreateLaunchConfiguration"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if lc.Name == "" {
		return newErr(op, ErrCodeValidationError, "launch configuration name must not be empty")
	}
	if _, ok := c.lcs[lc.Name]; ok {
		return newErr(op, ErrCodeAlreadyExists, "launch configuration %q already exists", lc.Name)
	}
	img, ok := c.images[lc.ImageID]
	if !ok || !img.Available {
		return newErr(op, ErrCodeInvalidAMINotFound, "the image id %q does not exist", lc.ImageID)
	}
	if _, ok := c.keyPairs[lc.KeyName]; !ok {
		return newErr(op, ErrCodeInvalidKeyPair, "the key pair %q does not exist", lc.KeyName)
	}
	for _, sg := range lc.SecurityGroups {
		if _, ok := c.sgs[sg]; !ok {
			return newErr(op, ErrCodeInvalidGroupNotFound, "the security group %q does not exist", sg)
		}
	}
	stored := copyLC(&lc)
	stored.CreatedAt = c.now()
	c.lcs[lc.Name] = &stored
	return nil
}

// DeleteLaunchConfiguration removes a launch configuration.
func (c *Cloud) DeleteLaunchConfiguration(ctx context.Context, name string) error {
	const op = "DeleteLaunchConfiguration"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.lcs[name]; !ok {
		return newErr(op, ErrCodeLaunchConfigNotFound, "launch configuration %q not found", name)
	}
	delete(c.lcs, name)
	return nil
}

// DescribeLaunchConfiguration returns the named launch configuration.
func (c *Cloud) DescribeLaunchConfiguration(ctx context.Context, name string) (LaunchConfig, error) {
	const op = "DescribeLaunchConfigurations"
	if err := c.apiCall(ctx, op); err != nil {
		return LaunchConfig{}, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	lc, ok := v.lcs[name]
	if !ok {
		return LaunchConfig{}, newErr(op, ErrCodeLaunchConfigNotFound, "launch configuration %q not found", name)
	}
	return lc, nil
}

// CreateAutoScalingGroup creates an ASG. The reconciler will launch
// instances toward the desired capacity on its next tick.
func (c *Cloud) CreateAutoScalingGroup(ctx context.Context, asg ASG) error {
	const op = "CreateAutoScalingGroup"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if asg.Name == "" {
		return newErr(op, ErrCodeValidationError, "auto scaling group name must not be empty")
	}
	if _, ok := c.asgs[asg.Name]; ok {
		return newErr(op, ErrCodeAlreadyExists, "auto scaling group %q already exists", asg.Name)
	}
	if _, ok := c.lcs[asg.LaunchConfigName]; !ok {
		return newErr(op, ErrCodeLaunchConfigNotFound, "launch configuration %q not found", asg.LaunchConfigName)
	}
	if asg.Min < 0 || asg.Max < asg.Min || asg.Desired < asg.Min || asg.Desired > asg.Max {
		return newErr(op, ErrCodeValidationError, "invalid capacity bounds min=%d desired=%d max=%d", asg.Min, asg.Desired, asg.Max)
	}
	for _, elb := range asg.LoadBalancers {
		if _, ok := c.elbs[elb]; !ok {
			return newErr(op, ErrCodeLoadBalancerNotFound, "load balancer %q not found", elb)
		}
	}
	stored := copyASG(&asg)
	stored.Instances = nil
	stored.Activities = nil
	c.asgs[asg.Name] = &stored
	return nil
}

// DeleteAutoScalingGroup removes an ASG and terminates its members.
func (c *Cloud) DeleteAutoScalingGroup(ctx context.Context, name string) error {
	const op = "DeleteAutoScalingGroup"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	asg, ok := c.asgs[name]
	if !ok {
		return newErr(op, ErrCodeASGNotFound, "auto scaling group %q not found", name)
	}
	for _, id := range asg.Instances {
		if inst, ok := c.instances[id]; ok && inst.Live() {
			c.beginTerminate(inst, "ASG deletion")
		}
	}
	delete(c.asgs, name)
	return nil
}

// DescribeAutoScalingGroup returns the named ASG.
func (c *Cloud) DescribeAutoScalingGroup(ctx context.Context, name string) (ASG, error) {
	const op = "DescribeAutoScalingGroups"
	if err := c.apiCall(ctx, op); err != nil {
		return ASG{}, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	asg, ok := v.asgs[name]
	if !ok {
		return ASG{}, newErr(op, ErrCodeASGNotFound, "auto scaling group %q not found", name)
	}
	return asg, nil
}

// UpdateAutoScalingGroup changes the launch configuration and/or capacity
// bounds of an ASG. Empty lcName or negative capacity values leave the
// respective setting unchanged.
func (c *Cloud) UpdateAutoScalingGroup(ctx context.Context, name, lcName string, min, max, desired int) error {
	const op = "UpdateAutoScalingGroup"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	asg, ok := c.asgs[name]
	if !ok {
		return newErr(op, ErrCodeASGNotFound, "auto scaling group %q not found", name)
	}
	if lcName != "" {
		if _, ok := c.lcs[lcName]; !ok {
			return newErr(op, ErrCodeLaunchConfigNotFound, "launch configuration %q not found", lcName)
		}
		c.auditRecord(op, name+"/"+lcName, "operator")
		asg.LaunchConfigName = lcName
	}
	if min >= 0 {
		asg.Min = min
	}
	if max >= 0 {
		asg.Max = max
	}
	if desired >= 0 {
		asg.Desired = desired
	}
	if asg.Max < asg.Min || asg.Desired < asg.Min || asg.Desired > asg.Max {
		return newErr(op, ErrCodeValidationError, "invalid capacity bounds min=%d desired=%d max=%d", asg.Min, asg.Desired, asg.Max)
	}
	return nil
}

// SetDesiredCapacity adjusts only the desired capacity, as used by the
// scale-in/out interference operations.
func (c *Cloud) SetDesiredCapacity(ctx context.Context, name string, desired int) error {
	const op = "SetDesiredCapacity"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	asg, ok := c.asgs[name]
	if !ok {
		return newErr(op, ErrCodeASGNotFound, "auto scaling group %q not found", name)
	}
	if desired < asg.Min || desired > asg.Max {
		return newErr(op, ErrCodeValidationError, "desired capacity %d outside [%d,%d]", desired, asg.Min, asg.Max)
	}
	c.auditRecord(op, name, "operator")
	c.addActivity(asg, ActivitySuccessful,
		fmt.Sprintf("Setting desired capacity to %d", desired),
		"a user request explicitly set group desired capacity", "")
	asg.Desired = desired
	return nil
}

// TerminateInstanceInAutoScalingGroup terminates a member instance. With
// decrementCapacity the desired capacity shrinks by one; without, the ASG
// replaces the instance — the mechanism Asgard's rolling upgrade relies on.
func (c *Cloud) TerminateInstanceInAutoScalingGroup(ctx context.Context, id string, decrementCapacity bool) error {
	const op = "TerminateInstanceInAutoScalingGroup"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok || inst.ASGName == "" {
		return newErr(op, ErrCodeInvalidInstance, "the instance id %q is not in an auto scaling group", id)
	}
	asg, ok := c.asgs[inst.ASGName]
	if !ok {
		return newErr(op, ErrCodeASGNotFound, "auto scaling group %q not found", inst.ASGName)
	}
	if decrementCapacity && asg.Desired > asg.Min {
		asg.Desired--
	}
	if inst.State == StateTerminating || inst.State == StateTerminated {
		return nil
	}
	c.auditRecord(op, id, "operation-process")
	c.beginTerminate(inst, "instance taken out of service at user request")
	return nil
}

// DescribeScalingActivities returns the activity history of an ASG,
// newest first.
func (c *Cloud) DescribeScalingActivities(ctx context.Context, name string) ([]Activity, error) {
	const op = "DescribeScalingActivities"
	if err := c.apiCall(ctx, op); err != nil {
		return nil, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	asg, ok := v.asgs[name]
	if !ok {
		return nil, newErr(op, ErrCodeASGNotFound, "auto scaling group %q not found", name)
	}
	return asg.Activities, nil
}

// addActivity prepends a scaling activity and publishes a cloud log line.
// Caller must hold mu.
func (c *Cloud) addActivity(asg *ASG, status ActivityStatus, description, cause, statusMessage string) {
	act := Activity{
		ID:            c.newID("act"),
		ASGName:       asg.Name,
		Description:   description,
		Cause:         cause,
		Status:        status,
		StatusMessage: statusMessage,
		StartTime:     c.now(),
	}
	asg.Activities = append([]Activity{act}, asg.Activities...)
	const maxActivities = 200
	if len(asg.Activities) > maxActivities {
		asg.Activities = asg.Activities[:maxActivities]
	}
	fields := map[string]string{"asgid": asg.Name, "status": string(status)}
	c.publish(fmt.Sprintf("ASG %s activity: %s (%s) %s", asg.Name, description, status, statusMessage), fields)
}
