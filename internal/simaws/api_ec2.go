package simaws

import (
	"context"
	"fmt"
	"sort"
)

// RegisterImage creates a new AMI with the given name, application version
// and service list, returning its id.
func (c *Cloud) RegisterImage(ctx context.Context, name, version string, services []string) (string, error) {
	const op = "RegisterImage"
	if err := c.apiCall(ctx, op); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.newID("ami")
	c.images[id] = &Image{
		ID:        id,
		Name:      name,
		Version:   version,
		Services:  append([]string(nil), services...),
		Available: true,
	}
	return id, nil
}

// DeregisterImage makes an AMI unavailable for future launches.
func (c *Cloud) DeregisterImage(ctx context.Context, id string) error {
	const op = "DeregisterImage"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	img, ok := c.images[id]
	if !ok || !img.Available {
		return newErr(op, ErrCodeInvalidAMINotFound, "the image id %q does not exist", id)
	}
	img.Available = false
	c.auditRecord(op, id, "operator")
	c.publish(fmt.Sprintf("AMI %s deregistered", id), map[string]string{"amiid": id})
	return nil
}

// DescribeImage returns the AMI with the given id. Deregistered images
// report Available=false; unknown ids return InvalidAMIID.NotFound.
func (c *Cloud) DescribeImage(ctx context.Context, id string) (Image, error) {
	const op = "DescribeImages"
	if err := c.apiCall(ctx, op); err != nil {
		return Image{}, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	img, ok := v.images[id]
	if !ok {
		return Image{}, newErr(op, ErrCodeInvalidAMINotFound, "the image id %q does not exist", id)
	}
	return img, nil
}

// ImportKeyPair registers a key pair under the given name.
func (c *Cloud) ImportKeyPair(ctx context.Context, name string) error {
	const op = "ImportKeyPair"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.keyPairs[name]; ok {
		return newErr(op, ErrCodeAlreadyExists, "key pair %q already exists", name)
	}
	c.keyPairs[name] = &KeyPair{
		Name:        name,
		Fingerprint: fmt.Sprintf("%02x:%02x:%02x:%02x", c.rng.Intn(256), c.rng.Intn(256), c.rng.Intn(256), c.rng.Intn(256)),
	}
	return nil
}

// DeleteKeyPair removes a key pair. AWS allows deleting key pairs that are
// still referenced by launch configurations; subsequent launches fail.
func (c *Cloud) DeleteKeyPair(ctx context.Context, name string) error {
	const op = "DeleteKeyPair"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.keyPairs[name]; !ok {
		return newErr(op, ErrCodeInvalidKeyPair, "the key pair %q does not exist", name)
	}
	delete(c.keyPairs, name)
	c.auditRecord(op, name, "operator")
	c.publish(fmt.Sprintf("key pair %s deleted", name), map[string]string{"keyname": name})
	return nil
}

// DescribeKeyPair returns the named key pair.
func (c *Cloud) DescribeKeyPair(ctx context.Context, name string) (KeyPair, error) {
	const op = "DescribeKeyPairs"
	if err := c.apiCall(ctx, op); err != nil {
		return KeyPair{}, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	kp, ok := v.keyPairs[name]
	if !ok {
		return KeyPair{}, newErr(op, ErrCodeInvalidKeyPair, "the key pair %q does not exist", name)
	}
	return kp, nil
}

// CreateSecurityGroup creates a named security group with the given open
// ingress ports and returns its id.
func (c *Cloud) CreateSecurityGroup(ctx context.Context, name string, ingressPorts []int) (string, error) {
	const op = "CreateSecurityGroup"
	if err := c.apiCall(ctx, op); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sgs[name]; ok {
		return "", newErr(op, ErrCodeAlreadyExists, "security group %q already exists", name)
	}
	id := c.newID("sg")
	c.sgs[name] = &SecurityGroup{
		ID:           id,
		Name:         name,
		IngressPorts: append([]int(nil), ingressPorts...),
	}
	return id, nil
}

// DeleteSecurityGroup removes a security group by name.
func (c *Cloud) DeleteSecurityGroup(ctx context.Context, name string) error {
	const op = "DeleteSecurityGroup"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sgs[name]; !ok {
		return newErr(op, ErrCodeInvalidGroupNotFound, "the security group %q does not exist", name)
	}
	delete(c.sgs, name)
	c.auditRecord(op, name, "operator")
	c.publish(fmt.Sprintf("security group %s deleted", name), map[string]string{"sgname": name})
	return nil
}

// DescribeSecurityGroup returns the named security group.
func (c *Cloud) DescribeSecurityGroup(ctx context.Context, name string) (SecurityGroup, error) {
	const op = "DescribeSecurityGroups"
	if err := c.apiCall(ctx, op); err != nil {
		return SecurityGroup{}, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	sg, ok := v.sgs[name]
	if !ok {
		return SecurityGroup{}, newErr(op, ErrCodeInvalidGroupNotFound, "the security group %q does not exist", name)
	}
	return sg, nil
}

// DescribeInstance returns one instance by id.
func (c *Cloud) DescribeInstance(ctx context.Context, id string) (Instance, error) {
	const op = "DescribeInstances"
	if err := c.apiCall(ctx, op); err != nil {
		return Instance{}, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	inst, ok := v.instances[id]
	if !ok {
		return Instance{}, newErr(op, ErrCodeInvalidInstance, "the instance id %q does not exist", id)
	}
	return inst, nil
}

// DescribeInstances returns all instances, sorted by id. Terminated
// instances remain visible (as on EC2, for a while).
func (c *Cloud) DescribeInstances(ctx context.Context) ([]Instance, error) {
	const op = "DescribeInstances"
	if err := c.apiCall(ctx, op); err != nil {
		return nil, err
	}
	c.mu.Lock()
	v := c.view()
	c.mu.Unlock()
	out := make([]Instance, 0, len(v.instances))
	for _, inst := range v.instances {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// TerminateInstance begins terminating an instance. Used both by the
// upgrade orchestrator (replace an old-version instance) and by the
// random-termination interference injector.
func (c *Cloud) TerminateInstance(ctx context.Context, id string) error {
	const op = "TerminateInstances"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok {
		return newErr(op, ErrCodeInvalidInstance, "the instance id %q does not exist", id)
	}
	if inst.State == StateTerminating || inst.State == StateTerminated {
		return nil // idempotent, like EC2
	}
	c.auditRecord(op, id, "operator")
	c.beginTerminate(inst, "user request")
	return nil
}

// beginTerminate transitions an instance to terminating, deregisters it
// from any ELB and records an ASG activity. Caller must hold mu.
func (c *Cloud) beginTerminate(inst *Instance, cause string) {
	inst.State = StateTerminating
	inst.TerminateAt = c.now().Add(c.profile.TerminateTime.Sample(c.rng))
	for _, elb := range c.elbs {
		removeString(&elb.Instances, inst.ID)
	}
	if asg, ok := c.asgs[inst.ASGName]; ok {
		c.addActivity(asg, ActivityInProgress,
			fmt.Sprintf("Terminating EC2 instance: %s", inst.ID), cause, "")
	}
	c.publish(fmt.Sprintf("instance %s terminating (%s)", inst.ID, cause),
		map[string]string{"instanceid": inst.ID})
}

// removeString deletes the first occurrence of s from the slice.
func removeString(list *[]string, s string) {
	for i, v := range *list {
		if v == s {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}
