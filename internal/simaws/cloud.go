package simaws

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
)

// Cloud is the simulated AWS account. All state is guarded by mu; every
// public API method models latency and throttling before touching state.
// Construct with New, then Start the reconciler; Stop before discarding.
type Cloud struct {
	clk     clock.Clock
	profile Profile
	bus     *logging.Bus  // may be nil
	inject  FaultInjector // may be nil

	mu        sync.Mutex
	rng       *rand.Rand
	images    map[string]*Image
	keyPairs  map[string]*KeyPair
	sgs       map[string]*SecurityGroup // by name
	lcs       map[string]*LaunchConfig
	asgs      map[string]*ASG
	elbs      map[string]*LoadBalancer
	instances map[string]*Instance

	elbDisrupted  bool
	externalUsage int // live instances held by the co-tenant team
	nextNum       int
	bucket        *tokenBucket
	snapshots     []snapshot
	launchBackoff map[string]time.Time
	audit         AuditTrail

	stop chan struct{}
	wg   sync.WaitGroup
}

// Option customizes a Cloud.
type Option func(*Cloud)

// WithBus attaches a log bus; the cloud publishes infrastructure events
// (scaling activities, disruptions) to it with type logging.TypeCloud.
func WithBus(bus *logging.Bus) Option {
	return func(c *Cloud) { c.bus = bus }
}

// WithSeed fixes the random seed, making latency/staleness sampling
// reproducible.
func WithSeed(seed int64) Option {
	return func(c *Cloud) { c.rng = rand.New(rand.NewSource(seed)) }
}

// FaultInjector is consulted before every API call; a non-nil error is
// returned to the caller in place of the real operation. Chaos harnesses
// use it to synthesize RequestLimitExceeded storms and latency spikes
// (which the injector models by sleeping on the clock before returning
// nil). It must be safe for concurrent use.
type FaultInjector func(ctx context.Context, op string) error

// PlaneMonitoring tags API calls issued by POD-Diagnosis's own monitoring
// plane (the consistent-API layer under assertion evaluation and
// diagnosis tests), as opposed to untagged operation-plane calls from the
// upgrade orchestrator. Fault injectors use the tag to attack one plane
// selectively.
const PlaneMonitoring = "monitoring"

// planeKey carries the calling-plane tag through a context.
type planeKey struct{}

// WithPlane returns ctx tagged with the calling plane name.
func WithPlane(ctx context.Context, plane string) context.Context {
	return context.WithValue(ctx, planeKey{}, plane)
}

// PlaneFrom returns ctx's plane tag; untagged calls report "".
func PlaneFrom(ctx context.Context) string {
	p, _ := ctx.Value(planeKey{}).(string)
	return p
}

// WithFaultInjector installs a chaos fault injector on the API plane.
func WithFaultInjector(f FaultInjector) Option {
	return func(c *Cloud) { c.inject = f }
}

// New returns a Cloud with the given clock and profile. The reconciler is
// not running until Start is called.
func New(clk clock.Clock, profile Profile, opts ...Option) *Cloud {
	c := &Cloud{
		clk:           clk,
		profile:       profile,
		rng:           rand.New(rand.NewSource(1)),
		images:        make(map[string]*Image),
		keyPairs:      make(map[string]*KeyPair),
		sgs:           make(map[string]*SecurityGroup),
		lcs:           make(map[string]*LaunchConfig),
		asgs:          make(map[string]*ASG),
		elbs:          make(map[string]*LoadBalancer),
		instances:     make(map[string]*Instance),
		launchBackoff: make(map[string]time.Time),
		stop:          make(chan struct{}),
	}
	c.bucket = newTokenBucket(profile.RatePerSecond, profile.RateBurst, clk)
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Start launches the background reconciler goroutine.
func (c *Cloud) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := clock.NewTicker(c.clk, c.profile.TickInterval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				c.tick()
			}
		}
	}()
}

// Stop halts the reconciler and waits for it to exit. Stop must be called
// exactly once, after Start.
func (c *Cloud) Stop() {
	close(c.stop)
	c.wg.Wait()
}

// Clock returns the cloud's time source.
func (c *Cloud) Clock() clock.Clock { return c.clk }

// ConsistencyWindow reports the maximum staleness a describe call may
// observe under the cloud's profile; see Profile.ConsistencyWindow.
func (c *Cloud) ConsistencyWindow() time.Duration { return c.profile.ConsistencyWindow() }

// now returns the current simulated time.
func (c *Cloud) now() time.Time { return c.clk.Now() }

// newID generates an AWS-style id with the given prefix, e.g. "i-04a1b2c3".
// Caller must hold mu.
func (c *Cloud) newID(prefix string) string {
	c.nextNum++
	return fmt.Sprintf("%s-%04x%04x", prefix, c.nextNum, c.rng.Intn(1<<16))
}

// publish emits a cloud infrastructure log event.
func (c *Cloud) publish(message string, fields map[string]string) {
	if c.bus == nil {
		return
	}
	c.bus.Publish(logging.Event{
		Timestamp:  c.now(),
		Source:     "cloud.log",
		SourceHost: "aws-sim",
		Type:       logging.TypeCloud,
		Fields:     fields,
		Message:    message,
	})
}

// apiCall models the cost of one API operation: account-level throttling,
// then jittered latency. It returns an APIError on throttle and ctx.Err()
// on cancellation.
func (c *Cloud) apiCall(ctx context.Context, op string) error {
	mAPICalls.With(op).Inc()
	if c.inject != nil {
		if err := c.inject(ctx, op); err != nil {
			return err
		}
	}
	if !c.bucket.allow(1) {
		mAPIThrottled.With(op).Inc()
		return newErr(op, ErrCodeRequestLimitExceeded, "request limit exceeded for account")
	}
	c.mu.Lock()
	d := c.profile.APILatency.Sample(c.rng)
	c.mu.Unlock()
	mAPILatency.Observe(d.Seconds())
	if err := c.clk.Sleep(ctx, d); err != nil {
		return fmt.Errorf("%s: %w", op, err)
	}
	return nil
}

// SetELBServiceDisruption toggles an ELB control-plane outage: while
// disrupted, every ELB API call fails with ServiceUnavailable and the
// reconciler cannot register new instances. This models the December 2012
// ELB service event the paper cites (§V.C).
func (c *Cloud) SetELBServiceDisruption(disrupted bool) {
	c.mu.Lock()
	c.elbDisrupted = disrupted
	c.mu.Unlock()
	if disrupted {
		c.publish("ELB service disruption started: missing ELB state data", nil)
	} else {
		c.publish("ELB service disruption ended", nil)
	}
}

// ELBServiceDisrupted reports whether the ELB control plane is down.
func (c *Cloud) ELBServiceDisrupted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elbDisrupted
}

// SetExternalUsage sets the number of live instances consumed by the
// independent co-tenant team sharing the account (§VI.A). These count
// against the account instance limit but are otherwise invisible.
func (c *Cloud) SetExternalUsage(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.externalUsage = n
}

// ExternalUsage returns the co-tenant instance count.
func (c *Cloud) ExternalUsage() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.externalUsage
}

// liveInstanceCount counts instances against the account limit. Caller
// must hold mu.
func (c *Cloud) liveInstanceCount() int {
	n := c.externalUsage
	for _, inst := range c.instances {
		if inst.Live() {
			n++
		}
	}
	return n
}

// atLimit reports whether launching one more instance would exceed the
// account limit. Caller must hold mu.
func (c *Cloud) atLimit() bool {
	return c.profile.InstanceLimit > 0 && c.liveInstanceCount() >= c.profile.InstanceLimit
}

// tokenBucket is a simple clock-driven token bucket.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	clk    clock.Clock
}

func newTokenBucket(rate, burst float64, clk clock.Clock) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, clk: clk, last: clk.Now()}
}

// allow consumes n tokens if available. A zero rate always allows.
func (b *tokenBucket) allow(n float64) bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clk.Now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}
