package simaws

import (
	"context"
	"sync"
	"time"
)

// AuditTrail models CloudTrail (§VII of the paper): a log of every
// mutating API call on the account, delivered with a configurable delay —
// the paper measured up to 15 minutes between a call and its CloudTrail
// record appearing, which made the product unusable for online diagnosis.
// The simulator reproduces exactly that trade-off: records become visible
// to LookupEvents only DeliveryDelay after the call.
type AuditTrail struct {
	mu      sync.Mutex
	delay   time.Duration
	records []AuditRecord
	enabled bool
}

// AuditRecord is one API-call log entry.
type AuditRecord struct {
	// At is when the call happened.
	At time.Time `json:"eventTime"`
	// VisibleAt is when the record becomes queryable.
	VisibleAt time.Time `json:"-"`
	// Op is the API operation, e.g. "TerminateInstances".
	Op string `json:"eventName"`
	// Resource is the primary resource the call touched.
	Resource string `json:"resource"`
	// Principal identifies the caller ("operator" for direct API use,
	// "autoscaling" for reconciler actions).
	Principal string `json:"userIdentity"`
}

// EnableAuditTrail turns on API-call logging with the given delivery
// delay. Pass 0 for instant delivery (an idealized CloudTrail).
func (c *Cloud) EnableAuditTrail(delay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.audit.enabled = true
	c.audit.delay = delay
}

// auditRecord appends one record. Caller must hold mu.
func (c *Cloud) auditRecord(op, resource, principal string) {
	if !c.audit.enabled {
		return
	}
	now := c.now()
	c.audit.records = append(c.audit.records, AuditRecord{
		At:        now,
		VisibleAt: now.Add(c.audit.delay),
		Op:        op,
		Resource:  resource,
		Principal: principal,
	})
	const maxAuditRecords = 2000
	if len(c.audit.records) > maxAuditRecords {
		c.audit.records = append([]AuditRecord(nil), c.audit.records[len(c.audit.records)-maxAuditRecords:]...)
	}
}

// LookupAuditEvents returns the audit records visible by now whose
// operation matches op ("" matches all), newest first. Like CloudTrail,
// records still within the delivery delay are silently absent.
func (c *Cloud) LookupAuditEvents(ctx context.Context, op string) ([]AuditRecord, error) {
	const apiOp = "LookupEvents"
	if err := c.apiCall(ctx, apiOp); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.audit.enabled {
		return nil, newErr(apiOp, ErrCodeValidationError, "the audit trail is not enabled")
	}
	now := c.now()
	var out []AuditRecord
	for i := len(c.audit.records) - 1; i >= 0; i-- {
		r := c.audit.records[i]
		if r.VisibleAt.After(now) {
			continue
		}
		if op != "" && r.Op != op {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}
