// Package simaws implements an in-process simulation of the subset of AWS
// that the POD-Diagnosis paper's evaluation exercises: EC2 instances,
// machine images (AMIs), key pairs, security groups, launch configurations,
// auto scaling groups (ASGs) with a background reconciler, and elastic load
// balancers (ELBs).
//
// The simulator reproduces the observable behaviours the paper's faults and
// diagnosis depend on: AWS-style API error codes, jittered API latency,
// per-account request throttling, an account instance limit, ELB service
// disruptions, and eventual consistency (describe calls may serve a stale
// snapshot of the world; see consistency.go).
package simaws

import "time"

// InstanceState is the lifecycle state of an EC2 instance.
type InstanceState int

// Instance lifecycle states.
const (
	StatePending InstanceState = iota + 1
	StateInService
	StateTerminating
	StateTerminated
)

// String implements fmt.Stringer.
func (s InstanceState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateInService:
		return "in-service"
	case StateTerminating:
		return "terminating"
	case StateTerminated:
		return "terminated"
	default:
		return "unknown"
	}
}

// Image is a virtual machine image (AMI).
type Image struct {
	// ID is the AMI id, e.g. "ami-750c9e4f".
	ID string `json:"imageId"`
	// Name is a human-readable label.
	Name string `json:"name"`
	// Version is the application version baked into the image, e.g. "v2".
	Version string `json:"version"`
	// Services lists the application services the image runs, e.g.
	// redis, logstash, elasticsearch, kibana.
	Services []string `json:"services"`
	// Available is false once the image has been deregistered.
	Available bool `json:"available"`
}

// KeyPair is an SSH key pair.
type KeyPair struct {
	// Name identifies the key pair.
	Name string `json:"keyName"`
	// Fingerprint is a fake fingerprint for realism.
	Fingerprint string `json:"keyFingerprint"`
}

// SecurityGroup is a named firewall configuration.
type SecurityGroup struct {
	// ID is the group id, e.g. "sg-1a2b3c".
	ID string `json:"groupId"`
	// Name is the group name.
	Name string `json:"groupName"`
	// IngressPorts are the open inbound TCP ports.
	IngressPorts []int `json:"ingressPorts"`
}

// LaunchConfig describes how an ASG launches instances.
type LaunchConfig struct {
	// Name identifies the launch configuration.
	Name string `json:"launchConfigurationName"`
	// ImageID is the AMI to launch from.
	ImageID string `json:"imageId"`
	// KeyName is the key pair installed on new instances.
	KeyName string `json:"keyName"`
	// SecurityGroups are the security group names applied to new
	// instances.
	SecurityGroups []string `json:"securityGroups"`
	// InstanceType is the EC2 instance type, e.g. "m1.small".
	InstanceType string `json:"instanceType"`
	// CreatedAt is the creation time.
	CreatedAt time.Time `json:"createdTime"`
}

// Instance is a virtual machine.
type Instance struct {
	// ID is the instance id, e.g. "i-7df34041".
	ID string `json:"instanceId"`
	// ImageID is the AMI the instance was launched from.
	ImageID string `json:"imageId"`
	// Version is the application version of that AMI.
	Version string `json:"version"`
	// Services are the application services running on the instance.
	Services []string `json:"services"`
	// KeyName is the installed key pair.
	KeyName string `json:"keyName"`
	// SecurityGroups are the applied security group names.
	SecurityGroups []string `json:"securityGroups"`
	// InstanceType is the EC2 instance type.
	InstanceType string `json:"instanceType"`
	// LaunchConfigName records which launch configuration produced the
	// instance ("" for directly launched instances).
	LaunchConfigName string `json:"launchConfigurationName"`
	// ASGName is the owning auto scaling group ("" if none).
	ASGName string `json:"autoScalingGroupName"`
	// State is the lifecycle state.
	State InstanceState `json:"state"`
	// LaunchTime is when the launch was initiated.
	LaunchTime time.Time `json:"launchTime"`
	// ReadyAt is when a pending instance becomes in-service.
	ReadyAt time.Time `json:"-"`
	// TerminateAt is when a terminating instance becomes terminated.
	TerminateAt time.Time `json:"-"`
}

// Live reports whether the instance counts against capacity (pending,
// in-service, or still terminating).
func (i *Instance) Live() bool {
	return i.State == StatePending || i.State == StateInService || i.State == StateTerminating
}

// ASG is an auto scaling group.
type ASG struct {
	// Name identifies the group.
	Name string `json:"autoScalingGroupName"`
	// LaunchConfigName is the launch configuration used for new
	// instances.
	LaunchConfigName string `json:"launchConfigurationName"`
	// Min, Max and Desired are the capacity bounds.
	Min     int `json:"minSize"`
	Max     int `json:"maxSize"`
	Desired int `json:"desiredCapacity"`
	// LoadBalancers are the attached ELB names.
	LoadBalancers []string `json:"loadBalancerNames"`
	// Instances are the ids of member instances (live only).
	Instances []string `json:"instances"`
	// Activities is the scaling activity history, newest first.
	Activities []Activity `json:"-"`
}

// ActivityStatus is the outcome of a scaling activity.
type ActivityStatus string

// Scaling activity outcomes.
const (
	ActivitySuccessful ActivityStatus = "Successful"
	ActivityFailed     ActivityStatus = "Failed"
	ActivityInProgress ActivityStatus = "InProgress"
)

// Activity is one entry of an ASG's scaling history, mirroring the AWS
// DescribeScalingActivities response.
type Activity struct {
	// ID identifies the activity.
	ID string `json:"activityId"`
	// ASGName is the owning group.
	ASGName string `json:"autoScalingGroupName"`
	// Description summarizes the action, e.g. "Launching a new EC2
	// instance: i-abc".
	Description string `json:"description"`
	// Cause explains why the activity happened.
	Cause string `json:"cause"`
	// Status is the outcome.
	Status ActivityStatus `json:"statusCode"`
	// StatusMessage carries failure details.
	StatusMessage string `json:"statusMessage"`
	// StartTime is when the activity began.
	StartTime time.Time `json:"startTime"`
}

// LoadBalancer is an elastic load balancer.
type LoadBalancer struct {
	// Name identifies the load balancer.
	Name string `json:"loadBalancerName"`
	// Instances are the registered instance ids.
	Instances []string `json:"instances"`
	// CreatedAt is the creation time.
	CreatedAt time.Time `json:"createdTime"`
}

// InstanceHealth is one entry of an ELB health description.
type InstanceHealth struct {
	// InstanceID is the registered instance.
	InstanceID string `json:"instanceId"`
	// State is "InService" or "OutOfService".
	State string `json:"state"`
	// Description explains an OutOfService state.
	Description string `json:"description"`
}
