package simaws

import "context"

// elbGuard returns a ServiceUnavailable error while the ELB control plane
// is disrupted. Caller must hold mu.
func (c *Cloud) elbGuard(op string) error {
	if c.elbDisrupted {
		return newErr(op, ErrCodeServiceUnavailable, "the ELB service is currently unavailable")
	}
	return nil
}

// CreateLoadBalancer creates an ELB with the given name.
func (c *Cloud) CreateLoadBalancer(ctx context.Context, name string) error {
	const op = "CreateLoadBalancer"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.elbGuard(op); err != nil {
		return err
	}
	if _, ok := c.elbs[name]; ok {
		return newErr(op, ErrCodeAlreadyExists, "load balancer %q already exists", name)
	}
	c.elbs[name] = &LoadBalancer{Name: name, CreatedAt: c.now()}
	return nil
}

// DeleteLoadBalancer removes an ELB.
func (c *Cloud) DeleteLoadBalancer(ctx context.Context, name string) error {
	const op = "DeleteLoadBalancer"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.elbGuard(op); err != nil {
		return err
	}
	if _, ok := c.elbs[name]; !ok {
		return newErr(op, ErrCodeLoadBalancerNotFound, "load balancer %q not found", name)
	}
	delete(c.elbs, name)
	c.publish("load balancer "+name+" deleted", map[string]string{"elbname": name})
	return nil
}

// DescribeLoadBalancer returns the named ELB.
func (c *Cloud) DescribeLoadBalancer(ctx context.Context, name string) (LoadBalancer, error) {
	const op = "DescribeLoadBalancers"
	if err := c.apiCall(ctx, op); err != nil {
		return LoadBalancer{}, err
	}
	c.mu.Lock()
	guardErr := c.elbGuard(op)
	v := c.view()
	c.mu.Unlock()
	if guardErr != nil {
		return LoadBalancer{}, guardErr
	}
	elb, ok := v.elbs[name]
	if !ok {
		return LoadBalancer{}, newErr(op, ErrCodeLoadBalancerNotFound, "load balancer %q not found", name)
	}
	return elb, nil
}

// RegisterInstancesWithLoadBalancer adds instances to an ELB.
func (c *Cloud) RegisterInstancesWithLoadBalancer(ctx context.Context, name string, instanceIDs ...string) error {
	const op = "RegisterInstancesWithLoadBalancer"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.elbGuard(op); err != nil {
		return err
	}
	elb, ok := c.elbs[name]
	if !ok {
		return newErr(op, ErrCodeLoadBalancerNotFound, "load balancer %q not found", name)
	}
	for _, id := range instanceIDs {
		inst, ok := c.instances[id]
		if !ok || !inst.Live() {
			return newErr(op, ErrCodeInvalidInstance, "the instance id %q does not exist", id)
		}
		if !containsString(elb.Instances, id) {
			elb.Instances = append(elb.Instances, id)
		}
	}
	return nil
}

// DeregisterInstancesFromLoadBalancer removes instances from an ELB.
// Deregistering an unknown instance is a no-op, as on AWS.
func (c *Cloud) DeregisterInstancesFromLoadBalancer(ctx context.Context, name string, instanceIDs ...string) error {
	const op = "DeregisterInstancesFromLoadBalancer"
	if err := c.apiCall(ctx, op); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.elbGuard(op); err != nil {
		return err
	}
	elb, ok := c.elbs[name]
	if !ok {
		return newErr(op, ErrCodeLoadBalancerNotFound, "load balancer %q not found", name)
	}
	for _, id := range instanceIDs {
		removeString(&elb.Instances, id)
	}
	return nil
}

// DescribeInstanceHealth returns the health of every instance registered
// with the ELB.
func (c *Cloud) DescribeInstanceHealth(ctx context.Context, name string) ([]InstanceHealth, error) {
	const op = "DescribeInstanceHealth"
	if err := c.apiCall(ctx, op); err != nil {
		return nil, err
	}
	c.mu.Lock()
	guardErr := c.elbGuard(op)
	v := c.view()
	c.mu.Unlock()
	if guardErr != nil {
		return nil, guardErr
	}
	elb, ok := v.elbs[name]
	if !ok {
		return nil, newErr(op, ErrCodeLoadBalancerNotFound, "load balancer %q not found", name)
	}
	out := make([]InstanceHealth, 0, len(elb.Instances))
	for _, id := range elb.Instances {
		h := InstanceHealth{InstanceID: id, State: "OutOfService", Description: "Instance is not known"}
		if inst, ok := v.instances[id]; ok {
			if inst.State == StateInService {
				h.State = "InService"
				h.Description = ""
			} else {
				h.Description = "Instance is in state " + inst.State.String()
			}
		}
		out = append(out, h)
	}
	return out, nil
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
