package simaws

import (
	"context"
	"errors"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
)

// testCloud builds a started cloud with a fast profile and registers the
// canonical fixture: one AMI (v1), key pair, security group, launch config,
// ELB, and an ASG of size n. It returns the cloud plus the fixture ids.
type fixture struct {
	cloud   *Cloud
	ctx     context.Context
	amiV1   string
	keyName string
	sgName  string
	lcName  string
	elbName string
	asgName string
}

func newFixture(t *testing.T, n int, profile Profile) *fixture {
	t.Helper()
	clk := clock.NewScaled(200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	c := New(clk, profile, WithSeed(42))
	c.Start()
	t.Cleanup(c.Stop)
	ctx := context.Background()
	f := &fixture{
		cloud: c, ctx: ctx,
		keyName: "pod-key", sgName: "pod-sg",
		lcName: "pod-lc-v1", elbName: "pod-elb", asgName: "pod-asg",
	}
	ami, err := c.RegisterImage(ctx, "monitor-v1", "v1", []string{"redis", "logstash", "elasticsearch", "kibana"})
	if err != nil {
		t.Fatalf("RegisterImage: %v", err)
	}
	f.amiV1 = ami
	if err := c.ImportKeyPair(ctx, f.keyName); err != nil {
		t.Fatalf("ImportKeyPair: %v", err)
	}
	if _, err := c.CreateSecurityGroup(ctx, f.sgName, []int{22, 80}); err != nil {
		t.Fatalf("CreateSecurityGroup: %v", err)
	}
	if err := c.CreateLaunchConfiguration(ctx, LaunchConfig{
		Name: f.lcName, ImageID: ami, KeyName: f.keyName,
		SecurityGroups: []string{f.sgName}, InstanceType: "m1.small",
	}); err != nil {
		t.Fatalf("CreateLaunchConfiguration: %v", err)
	}
	if err := c.CreateLoadBalancer(ctx, f.elbName); err != nil {
		t.Fatalf("CreateLoadBalancer: %v", err)
	}
	if err := c.CreateAutoScalingGroup(ctx, ASG{
		Name: f.asgName, LaunchConfigName: f.lcName,
		Min: 0, Max: n * 2, Desired: n,
		LoadBalancers: []string{f.elbName},
	}); err != nil {
		t.Fatalf("CreateAutoScalingGroup: %v", err)
	}
	return f
}

// waitFor polls until pred succeeds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func (f *fixture) inService(t *testing.T) []Instance {
	t.Helper()
	instances, err := f.cloud.DescribeInstances(f.ctx)
	if err != nil {
		t.Fatalf("DescribeInstances: %v", err)
	}
	var out []Instance
	for _, inst := range instances {
		if inst.State == StateInService && inst.ASGName == f.asgName {
			out = append(out, inst)
		}
	}
	return out
}

func TestASGLaunchesToDesiredCapacity(t *testing.T) {
	f := newFixture(t, 4, FastProfile())
	waitFor(t, 5*time.Second, "4 in-service instances", func() bool {
		return len(f.inService(t)) == 4
	})
	for _, inst := range f.inService(t) {
		if inst.ImageID != f.amiV1 || inst.Version != "v1" {
			t.Errorf("instance %s has image %s version %s", inst.ID, inst.ImageID, inst.Version)
		}
		if inst.KeyName != f.keyName || inst.InstanceType != "m1.small" {
			t.Errorf("instance %s has wrong launch settings", inst.ID)
		}
	}
}

func TestASGRegistersInstancesWithELB(t *testing.T) {
	f := newFixture(t, 3, FastProfile())
	waitFor(t, 5*time.Second, "3 registered instances", func() bool {
		elb, err := f.cloud.DescribeLoadBalancer(f.ctx, f.elbName)
		return err == nil && len(elb.Instances) == 3
	})
	health, err := f.cloud.DescribeInstanceHealth(f.ctx, f.elbName)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range health {
		if h.State != "InService" {
			t.Errorf("instance %s health = %s (%s)", h.InstanceID, h.State, h.Description)
		}
	}
}

func TestASGReplacesTerminatedInstance(t *testing.T) {
	f := newFixture(t, 2, FastProfile())
	waitFor(t, 5*time.Second, "2 in-service", func() bool { return len(f.inService(t)) == 2 })
	victim := f.inService(t)[0].ID
	if err := f.cloud.TerminateInstance(f.ctx, victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "replacement instance", func() bool {
		insts := f.inService(t)
		if len(insts) != 2 {
			return false
		}
		for _, inst := range insts {
			if inst.ID == victim {
				return false
			}
		}
		return true
	})
}

func TestTerminateInASGWithoutDecrementReplaces(t *testing.T) {
	f := newFixture(t, 2, FastProfile())
	waitFor(t, 5*time.Second, "2 in-service", func() bool { return len(f.inService(t)) == 2 })
	victim := f.inService(t)[0].ID
	if err := f.cloud.TerminateInstanceInAutoScalingGroup(f.ctx, victim, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "replacement", func() bool {
		insts := f.inService(t)
		for _, inst := range insts {
			if inst.ID == victim {
				return false
			}
		}
		return len(insts) == 2
	})
	asg, err := f.cloud.DescribeAutoScalingGroup(f.ctx, f.asgName)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Desired != 2 {
		t.Fatalf("desired = %d after non-decrement terminate", asg.Desired)
	}
}

func TestTerminateInASGWithDecrementShrinks(t *testing.T) {
	f := newFixture(t, 3, FastProfile())
	waitFor(t, 5*time.Second, "3 in-service", func() bool { return len(f.inService(t)) == 3 })
	victim := f.inService(t)[0].ID
	if err := f.cloud.TerminateInstanceInAutoScalingGroup(f.ctx, victim, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "shrink to 2", func() bool { return len(f.inService(t)) == 2 })
	asg, _ := f.cloud.DescribeAutoScalingGroup(f.ctx, f.asgName)
	if asg.Desired != 2 {
		t.Fatalf("desired = %d, want 2", asg.Desired)
	}
}

func TestScaleInPrefersOldLaunchConfig(t *testing.T) {
	f := newFixture(t, 2, FastProfile())
	waitFor(t, 5*time.Second, "2 in-service", func() bool { return len(f.inService(t)) == 2 })

	amiV2, err := f.cloud.RegisterImage(f.ctx, "monitor-v2", "v2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.cloud.CreateLaunchConfiguration(f.ctx, LaunchConfig{
		Name: "pod-lc-v2", ImageID: amiV2, KeyName: f.keyName,
		SecurityGroups: []string{f.sgName}, InstanceType: "m1.small",
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.cloud.UpdateAutoScalingGroup(f.ctx, f.asgName, "pod-lc-v2", -1, -1, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "one v2 instance", func() bool {
		for _, inst := range f.inService(t) {
			if inst.Version == "v2" {
				return true
			}
		}
		return false
	})
	// Scale back to 2: the remaining v1 (old LC) instance must go first.
	if err := f.cloud.SetDesiredCapacity(f.ctx, f.asgName, 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "scale-in drops a v1 instance", func() bool {
		insts := f.inService(t)
		if len(insts) != 2 {
			return false
		}
		v1 := 0
		for _, inst := range insts {
			if inst.Version == "v1" {
				v1++
			}
		}
		return v1 == 1
	})
}

func TestLaunchFailsWhenAMIDeregistered(t *testing.T) {
	f := newFixture(t, 2, FastProfile())
	waitFor(t, 5*time.Second, "2 in-service", func() bool { return len(f.inService(t)) == 2 })
	if err := f.cloud.DeregisterImage(f.ctx, f.amiV1); err != nil {
		t.Fatal(err)
	}
	victim := f.inService(t)[0].ID
	if err := f.cloud.TerminateInstance(f.ctx, victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "failed launch activity", func() bool {
		acts, err := f.cloud.DescribeScalingActivities(f.ctx, f.asgName)
		if err != nil {
			return false
		}
		for _, a := range acts {
			if a.Status == ActivityFailed && containsString([]string{a.StatusMessage}, a.StatusMessage) &&
				a.StatusMessage != "" {
				return true
			}
		}
		return false
	})
	acts, _ := f.cloud.DescribeScalingActivities(f.ctx, f.asgName)
	found := false
	for _, a := range acts {
		if a.Status == ActivityFailed {
			if want := ErrCodeInvalidAMINotFound; len(a.StatusMessage) > 0 && a.StatusMessage[:len(want)] == want {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no failed activity mentioning %s: %+v", ErrCodeInvalidAMINotFound, acts)
	}
}

func TestLaunchFailsWhenKeyPairDeleted(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	waitFor(t, 5*time.Second, "1 in-service", func() bool { return len(f.inService(t)) == 1 })
	if err := f.cloud.DeleteKeyPair(f.ctx, f.keyName); err != nil {
		t.Fatal(err)
	}
	if err := f.cloud.TerminateInstance(f.ctx, f.inService(t)[0].ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "failed launch on key pair", func() bool {
		acts, err := f.cloud.DescribeScalingActivities(f.ctx, f.asgName)
		if err != nil {
			return false
		}
		for _, a := range acts {
			if a.Status == ActivityFailed && len(a.StatusMessage) >= len(ErrCodeInvalidKeyPair) &&
				a.StatusMessage[:len(ErrCodeInvalidKeyPair)] == ErrCodeInvalidKeyPair {
				return true
			}
		}
		return false
	})
}

func TestInstanceLimitBlocksLaunch(t *testing.T) {
	profile := FastProfile()
	profile.InstanceLimit = 3
	f := newFixture(t, 2, profile)
	waitFor(t, 5*time.Second, "2 in-service", func() bool { return len(f.inService(t)) == 2 })
	f.cloud.SetExternalUsage(2) // 2 ours + 2 external > 3
	if err := f.cloud.SetDesiredCapacity(f.ctx, f.asgName, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "limit-exceeded activity", func() bool {
		acts, err := f.cloud.DescribeScalingActivities(f.ctx, f.asgName)
		if err != nil {
			return false
		}
		for _, a := range acts {
			if a.Status == ActivityFailed &&
				len(a.StatusMessage) >= len(ErrCodeInstanceLimitExceeded) &&
				a.StatusMessage[:len(ErrCodeInstanceLimitExceeded)] == ErrCodeInstanceLimitExceeded {
				return true
			}
		}
		return false
	})
	f.cloud.SetExternalUsage(0)
	waitFor(t, 5*time.Second, "third instance after limit lifted", func() bool {
		return len(f.inService(t)) == 3
	})
}

func TestELBDisruptionFailsAPIsAndRecovers(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	waitFor(t, 5*time.Second, "1 in-service", func() bool { return len(f.inService(t)) == 1 })
	f.cloud.SetELBServiceDisruption(true)
	_, err := f.cloud.DescribeLoadBalancer(f.ctx, f.elbName)
	if ErrorCode(err) != ErrCodeServiceUnavailable {
		t.Fatalf("DescribeLoadBalancer during disruption = %v", err)
	}
	if !IsRetryable(err) {
		t.Error("ServiceUnavailable should be retryable")
	}
	f.cloud.SetELBServiceDisruption(false)
	if _, err := f.cloud.DescribeLoadBalancer(f.ctx, f.elbName); err != nil {
		t.Fatalf("DescribeLoadBalancer after recovery: %v", err)
	}
}

func TestAPIErrorCodesAndHelpers(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	cases := []struct {
		name string
		err  error
		code string
	}{
		{"missing ami", func() error { _, err := f.cloud.DescribeImage(f.ctx, "ami-none"); return err }(), ErrCodeInvalidAMINotFound},
		{"missing key", func() error { _, err := f.cloud.DescribeKeyPair(f.ctx, "nope"); return err }(), ErrCodeInvalidKeyPair},
		{"missing sg", func() error { _, err := f.cloud.DescribeSecurityGroup(f.ctx, "nope"); return err }(), ErrCodeInvalidGroupNotFound},
		{"missing lc", func() error { _, err := f.cloud.DescribeLaunchConfiguration(f.ctx, "nope"); return err }(), ErrCodeLaunchConfigNotFound},
		{"missing asg", func() error { _, err := f.cloud.DescribeAutoScalingGroup(f.ctx, "nope"); return err }(), ErrCodeASGNotFound},
		{"missing elb", func() error { _, err := f.cloud.DescribeLoadBalancer(f.ctx, "nope"); return err }(), ErrCodeLoadBalancerNotFound},
		{"missing instance", func() error { _, err := f.cloud.DescribeInstance(f.ctx, "i-none"); return err }(), ErrCodeInvalidInstance},
	}
	for _, tc := range cases {
		if got := ErrorCode(tc.err); got != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, got, tc.code)
		}
		if !IsNotFound(tc.err) {
			t.Errorf("%s: IsNotFound = false", tc.name)
		}
	}
	if ErrorCode(errors.New("plain")) != "" {
		t.Error("ErrorCode of non-API error should be empty")
	}
}

func TestCreateLaunchConfigurationValidation(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	cases := []struct {
		name string
		lc   LaunchConfig
		code string
	}{
		{"empty name", LaunchConfig{ImageID: f.amiV1, KeyName: f.keyName}, ErrCodeValidationError},
		{"duplicate", LaunchConfig{Name: f.lcName, ImageID: f.amiV1, KeyName: f.keyName}, ErrCodeAlreadyExists},
		{"bad ami", LaunchConfig{Name: "x1", ImageID: "ami-none", KeyName: f.keyName}, ErrCodeInvalidAMINotFound},
		{"bad key", LaunchConfig{Name: "x2", ImageID: f.amiV1, KeyName: "nope"}, ErrCodeInvalidKeyPair},
		{"bad sg", LaunchConfig{Name: "x3", ImageID: f.amiV1, KeyName: f.keyName, SecurityGroups: []string{"nope"}}, ErrCodeInvalidGroupNotFound},
	}
	for _, tc := range cases {
		err := f.cloud.CreateLaunchConfiguration(f.ctx, tc.lc)
		if got := ErrorCode(err); got != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, got, tc.code)
		}
	}
}

func TestASGCapacityValidation(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	err := f.cloud.CreateAutoScalingGroup(f.ctx, ASG{
		Name: "bad", LaunchConfigName: f.lcName, Min: 5, Max: 2, Desired: 3,
	})
	if ErrorCode(err) != ErrCodeValidationError {
		t.Fatalf("invalid bounds accepted: %v", err)
	}
	err = f.cloud.SetDesiredCapacity(f.ctx, f.asgName, 1000)
	if ErrorCode(err) != ErrCodeValidationError {
		t.Fatalf("desired beyond max accepted: %v", err)
	}
}

func TestThrottlingKicksIn(t *testing.T) {
	profile := FastProfile()
	profile.RatePerSecond = 0.0001 // effectively: only the burst is usable
	profile.RateBurst = 5
	clk := clock.NewScaled(100, time.Unix(0, 0))
	c := New(clk, profile, WithSeed(1))
	c.Start()
	defer c.Stop()
	ctx := context.Background()
	var throttled bool
	for i := 0; i < 20; i++ {
		_, err := c.DescribeInstances(ctx)
		if ErrorCode(err) == ErrCodeRequestLimitExceeded {
			throttled = true
			break
		}
	}
	if !throttled {
		t.Fatal("no throttling after exhausting burst")
	}
}

func TestEventualConsistencyServesStaleReads(t *testing.T) {
	profile := FastProfile()
	profile.StaleProb = 1.0 // every read is stale
	profile.StaleLag = clock.Fixed(500 * time.Millisecond)
	profile.TickInterval = 5 * time.Millisecond
	f := newFixture(t, 1, profile)
	waitFor(t, 5*time.Second, "1 in-service", func() bool {
		// Live state check via scaling activities is also stale; poll
		// until the stale view catches up.
		insts, err := f.cloud.DescribeInstances(f.ctx)
		if err != nil {
			return false
		}
		n := 0
		for _, inst := range insts {
			if inst.State == StateInService {
				n++
			}
		}
		return n == 1
	})
	// Deregister the image; a stale read may still see it available.
	if err := f.cloud.DeregisterImage(f.ctx, f.amiV1); err != nil {
		t.Fatal(err)
	}
	img, err := f.cloud.DescribeImage(f.ctx, f.amiV1)
	if err != nil {
		t.Fatalf("stale DescribeImage: %v", err)
	}
	if !img.Available {
		t.Skip("stale window already passed on this machine")
	}
	// Eventually the deregistration becomes visible.
	waitFor(t, 5*time.Second, "deregistration visible", func() bool {
		img, err := f.cloud.DescribeImage(f.ctx, f.amiV1)
		return err == nil && !img.Available
	})
}

func TestCloudPublishesEventsToBus(t *testing.T) {
	bus := logging.NewBus()
	defer bus.Close()
	sink := logging.NewMemorySink()
	sub := bus.Subscribe(1024, logging.TypeFilter(logging.TypeCloud))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			sink.Write(e)
		}
	}()

	clk := clock.NewScaled(200, time.Unix(0, 0))
	c := New(clk, FastProfile(), WithSeed(3), WithBus(bus))
	c.Start()
	ctx := context.Background()
	ami, _ := c.RegisterImage(ctx, "x", "v1", nil)
	_ = c.ImportKeyPair(ctx, "k")
	_, _ = c.CreateSecurityGroup(ctx, "s", nil)
	_ = c.CreateLaunchConfiguration(ctx, LaunchConfig{Name: "lc", ImageID: ami, KeyName: "k", SecurityGroups: []string{"s"}})
	_ = c.CreateAutoScalingGroup(ctx, ASG{Name: "g", LaunchConfigName: "lc", Min: 0, Max: 2, Desired: 1})
	waitFor(t, 5*time.Second, "cloud events on bus", func() bool { return sink.Len() > 0 })
	c.Stop()
	sub.Cancel()
	<-done
}

func TestTerminateIsIdempotent(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	waitFor(t, 5*time.Second, "1 in-service", func() bool { return len(f.inService(t)) == 1 })
	id := f.inService(t)[0].ID
	if err := f.cloud.TerminateInstance(f.ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := f.cloud.TerminateInstance(f.ctx, id); err != nil {
		t.Fatalf("second terminate: %v", err)
	}
}

func TestDeleteASGTerminatesMembers(t *testing.T) {
	f := newFixture(t, 2, FastProfile())
	waitFor(t, 5*time.Second, "2 in-service", func() bool { return len(f.inService(t)) == 2 })
	if err := f.cloud.DeleteAutoScalingGroup(f.ctx, f.asgName); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "members terminated", func() bool {
		insts, err := f.cloud.DescribeInstances(f.ctx)
		if err != nil {
			return false
		}
		for _, inst := range insts {
			if inst.Live() {
				return false
			}
		}
		return true
	})
}

func TestInstanceStateString(t *testing.T) {
	want := map[InstanceState]string{
		StatePending:      "pending",
		StateInService:    "in-service",
		StateTerminating:  "terminating",
		StateTerminated:   "terminated",
		InstanceState(99): "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}
