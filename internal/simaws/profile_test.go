package simaws

import (
	"testing"
	"time"

	"poddiagnosis/internal/clock"
)

func TestConsistencyWindow(t *testing.T) {
	cases := []struct {
		name    string
		profile Profile
		want    time.Duration
	}{
		{"no staleness", FastProfile(), 0},
		{"bounded lag", Profile{StaleProb: 0.1, StaleLag: clock.Fixed(4 * time.Second)}, 4 * time.Second},
		{"unbounded lag capped by retention", Profile{StaleProb: 0.1, StaleLag: clock.Dist{Mean: time.Second}}, maxSnapshotAge},
		{"lag beyond retention capped", Profile{StaleProb: 0.1, StaleLag: clock.Dist{Mean: time.Minute, Max: 5 * time.Minute}}, maxSnapshotAge},
		{"paper profile uses its lag bound", PaperProfile(), 10 * time.Second},
	}
	for _, tc := range cases {
		if got := tc.profile.ConsistencyWindow(); got != tc.want {
			t.Errorf("%s: ConsistencyWindow() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCloudConsistencyWindowDelegates(t *testing.T) {
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	c := New(clk, PaperProfile(), WithSeed(1))
	if got, want := c.ConsistencyWindow(), PaperProfile().ConsistencyWindow(); got != want {
		t.Fatalf("cloud window = %v, profile window = %v", got, want)
	}
}
