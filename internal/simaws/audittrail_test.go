package simaws

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
)

func auditFixture(t *testing.T, delay time.Duration) (*Cloud, string) {
	t.Helper()
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	c := New(clk, FastProfile(), WithSeed(4))
	c.EnableAuditTrail(delay)
	c.Start()
	t.Cleanup(c.Stop)
	ctx := context.Background()
	ami, _ := c.RegisterImage(ctx, "x", "v1", nil)
	_ = c.ImportKeyPair(ctx, "k")
	_, _ = c.CreateSecurityGroup(ctx, "s", nil)
	_ = c.CreateLaunchConfiguration(ctx, LaunchConfig{Name: "lc", ImageID: ami, KeyName: "k", SecurityGroups: []string{"s"}})
	_ = c.CreateAutoScalingGroup(ctx, ASG{Name: "g", LaunchConfigName: "lc", Min: 0, Max: 4, Desired: 1})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		insts, err := c.DescribeInstances(ctx)
		if err == nil {
			for _, i := range insts {
				if i.State == StateInService {
					return c, i.ID
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("instance never in service")
	return nil, ""
}

func TestAuditTrailDisabledByDefault(t *testing.T) {
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	c := New(clk, FastProfile(), WithSeed(4))
	c.Start()
	defer c.Stop()
	_, err := c.LookupAuditEvents(context.Background(), "")
	if ErrorCode(err) != ErrCodeValidationError {
		t.Fatalf("err = %v", err)
	}
}

func TestAuditTrailRecordsTerminations(t *testing.T) {
	c, victim := auditFixture(t, 0)
	ctx := context.Background()
	if err := c.TerminateInstance(ctx, victim); err != nil {
		t.Fatal(err)
	}
	records, err := c.LookupAuditEvents(ctx, "TerminateInstances")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	r := records[0]
	if r.Resource != victim || r.Principal != "operator" {
		t.Fatalf("record = %+v", r)
	}
}

func TestAuditTrailDeliveryDelayHidesRecentCalls(t *testing.T) {
	// 15 minutes of simulated delivery delay — the paper's CloudTrail.
	c, victim := auditFixture(t, 15*time.Minute)
	ctx := context.Background()
	if err := c.TerminateInstance(ctx, victim); err != nil {
		t.Fatal(err)
	}
	records, err := c.LookupAuditEvents(ctx, "TerminateInstances")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("recent record visible despite delay: %+v", records)
	}
	// After the delay elapses (15min sim = 900ms wall at 1000x) the
	// record appears.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		records, err = c.LookupAuditEvents(ctx, "TerminateInstances")
		if err == nil && len(records) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("record never delivered")
}

func TestAuditTrailFiltersByOperation(t *testing.T) {
	c, _ := auditFixture(t, 0)
	ctx := context.Background()
	_ = c.SetDesiredCapacity(ctx, "g", 2)
	records, err := c.LookupAuditEvents(ctx, "SetDesiredCapacity")
	if err != nil || len(records) != 1 {
		t.Fatalf("records = %v err = %v", records, err)
	}
	all, err := c.LookupAuditEvents(ctx, "")
	if err != nil || len(all) < 1 {
		t.Fatalf("all = %v err = %v", all, err)
	}
}

func TestAuditTrailDistinguishesPrincipals(t *testing.T) {
	c, victim := auditFixture(t, 0)
	ctx := context.Background()
	// Termination through the operation process carries a different
	// principal than direct operator API use.
	if err := c.TerminateInstanceInAutoScalingGroup(ctx, victim, false); err != nil {
		t.Fatal(err)
	}
	records, err := c.LookupAuditEvents(ctx, "TerminateInstanceInAutoScalingGroup")
	if err != nil || len(records) != 1 {
		t.Fatalf("records = %v err = %v", records, err)
	}
	if records[0].Principal != "operation-process" {
		t.Fatalf("principal = %s", records[0].Principal)
	}
}
