package simaws

import "poddiagnosis/internal/obs"

// Simulated-AWS metrics, keyed exactly like the real AWS vocabulary (op =
// API operation name, code = AWS error code) so dashboards built against
// the simulator transfer to a real backend.
var (
	mAPICalls = obs.Default.CounterVec("pod_simaws_api_calls_total",
		"Simulated AWS API calls by operation.", "op")
	mAPIErrors = obs.Default.CounterVec("pod_simaws_api_errors_total",
		"Simulated AWS API errors by operation and AWS error code.", "op", "code")
	mAPIThrottled = obs.Default.CounterVec("pod_simaws_api_throttled_total",
		"Simulated AWS API calls rejected by account-level throttling.", "op")
	mAPILatency = obs.Default.Histogram("pod_simaws_api_latency_seconds",
		"Sampled simulated API latency (simulated seconds).", nil)
	mStaleReads = obs.Default.Counter("pod_simaws_stale_reads_total",
		"Describe calls served from a stale eventual-consistency snapshot.")
)
