package simaws

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"poddiagnosis/internal/clock"
)

// TestTokenBucketNeverExceedsBudget: over any sequence of allow calls the
// bucket grants at most burst + rate*elapsed tokens.
func TestTokenBucketNeverExceedsBudget(t *testing.T) {
	f := func(calls uint8) bool {
		clk := clock.NewScaled(10000, time.Unix(0, 0))
		b := newTokenBucket(10, 5, clk)
		start := clk.Now()
		granted := 0
		for i := 0; i < int(calls); i++ {
			if b.allow(1) {
				granted++
			}
		}
		elapsed := clk.Since(start).Seconds()
		budget := 5 + 10*elapsed + 1 // +1 slack for boundary sampling
		return float64(granted) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBucketRefills(t *testing.T) {
	clk := clock.NewScaled(10000, time.Unix(0, 0)) // very fast sim time
	b := newTokenBucket(100, 2, clk)
	if !b.allow(1) || !b.allow(1) {
		t.Fatal("burst not granted")
	}
	if b.allow(1) {
		t.Fatal("over-burst granted instantly")
	}
	// 10ms wall = 100s sim => plenty of refill.
	time.Sleep(10 * time.Millisecond)
	if !b.allow(1) {
		t.Fatal("no refill")
	}
}

func TestZeroRateBucketAlwaysAllows(t *testing.T) {
	clk := clock.NewReal()
	b := newTokenBucket(0, 0, clk)
	for i := 0; i < 1000; i++ {
		if !b.allow(1) {
			t.Fatal("zero-rate bucket denied")
		}
	}
}

// TestSnapshotHistoryBounded: the eventual-consistency ring never retains
// snapshots older than the window.
func TestSnapshotHistoryBounded(t *testing.T) {
	clk := clock.NewScaled(5000, time.Unix(0, 0))
	profile := FastProfile()
	profile.TickInterval = 50 * time.Millisecond
	c := New(clk, profile, WithSeed(1))
	c.Start()
	defer c.Stop()
	// Run long enough (in sim time) that pruning must happen.
	time.Sleep(50 * time.Millisecond) // = 250s sim, >> 30s window
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.snapshots) == 0 {
		t.Fatal("no snapshots recorded")
	}
	// Pruning happens per tick; under scheduler contention a tick can be
	// late by many simulated seconds, so allow a generous margin.
	oldest := c.snapshots[0].at
	if clk.Since(oldest) > maxSnapshotAge+90*time.Second {
		t.Fatalf("oldest snapshot is %v old", clk.Since(oldest))
	}
}

// TestDescribeReturnsCopies: mutating a describe result must not affect
// cloud state.
func TestDescribeReturnsCopies(t *testing.T) {
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	c := New(clk, FastProfile(), WithSeed(1))
	c.Start()
	defer c.Stop()
	ctx := context.Background()
	ami, err := c.RegisterImage(ctx, "x", "v1", []string{"svc"})
	if err != nil {
		t.Fatal(err)
	}
	img, err := c.DescribeImage(ctx, ami)
	if err != nil {
		t.Fatal(err)
	}
	img.Services[0] = "mutated"
	img.Version = "hacked"
	again, err := c.DescribeImage(ctx, ami)
	if err != nil {
		t.Fatal(err)
	}
	if again.Services[0] != "svc" || again.Version != "v1" {
		t.Fatal("describe leaked internal state")
	}
}

// TestActivityHistoryCapped: the scaling activity log stays bounded even
// under perpetual launch failures.
func TestActivityHistoryCapped(t *testing.T) {
	clk := clock.NewScaled(20000, time.Unix(0, 0))
	profile := FastProfile()
	profile.TickInterval = 100 * time.Millisecond
	c := New(clk, profile, WithSeed(1))
	c.Start()
	defer c.Stop()
	ctx := context.Background()
	ami, _ := c.RegisterImage(ctx, "x", "v1", nil)
	_ = c.ImportKeyPair(ctx, "k")
	_, _ = c.CreateSecurityGroup(ctx, "s", nil)
	_ = c.CreateLaunchConfiguration(ctx, LaunchConfig{Name: "lc", ImageID: ami, KeyName: "k", SecurityGroups: []string{"s"}})
	_ = c.CreateAutoScalingGroup(ctx, ASG{Name: "g", LaunchConfigName: "lc", Min: 0, Max: 4, Desired: 2})
	// Break launches forever.
	_ = c.DeregisterImage(ctx, ami)
	time.Sleep(100 * time.Millisecond) // huge sim-time span of failures
	acts, err := c.DescribeScalingActivities(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) > 200 {
		t.Fatalf("activity history unbounded: %d", len(acts))
	}
	if len(acts) == 0 {
		t.Fatal("no failure activities recorded")
	}
}
