package simaws

import (
	"context"
	"testing"
)

func TestELBLifecycleEdgeCases(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	ctx := context.Background()

	// Duplicate creation.
	if err := f.cloud.CreateLoadBalancer(ctx, f.elbName); ErrorCode(err) != ErrCodeAlreadyExists {
		t.Errorf("duplicate ELB: %v", err)
	}
	// Register unknown instance.
	if err := f.cloud.RegisterInstancesWithLoadBalancer(ctx, f.elbName, "i-ghost"); ErrorCode(err) != ErrCodeInvalidInstance {
		t.Errorf("register ghost: %v", err)
	}
	// Register with unknown ELB.
	if err := f.cloud.RegisterInstancesWithLoadBalancer(ctx, "nope", "i-ghost"); ErrorCode(err) != ErrCodeLoadBalancerNotFound {
		t.Errorf("register to missing ELB: %v", err)
	}
	// Deregister unknown instance from a real ELB: no-op.
	if err := f.cloud.DeregisterInstancesFromLoadBalancer(ctx, f.elbName, "i-ghost"); err != nil {
		t.Errorf("deregister ghost: %v", err)
	}
	// Deregister from unknown ELB.
	if err := f.cloud.DeregisterInstancesFromLoadBalancer(ctx, "nope"); ErrorCode(err) != ErrCodeLoadBalancerNotFound {
		t.Errorf("deregister from missing ELB: %v", err)
	}
	// Health of unknown ELB.
	if _, err := f.cloud.DescribeInstanceHealth(ctx, "nope"); ErrorCode(err) != ErrCodeLoadBalancerNotFound {
		t.Errorf("health of missing ELB: %v", err)
	}
	// Delete and verify gone.
	if err := f.cloud.DeleteLoadBalancer(ctx, f.elbName); err != nil {
		t.Fatalf("delete ELB: %v", err)
	}
	if err := f.cloud.DeleteLoadBalancer(ctx, f.elbName); ErrorCode(err) != ErrCodeLoadBalancerNotFound {
		t.Errorf("double delete: %v", err)
	}
}

func TestRegisterDoubleRegistrationIsIdempotent(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	ctx := context.Background()
	waitFor(t, 5e9, "1 in-service", func() bool { return len(f.inService(t)) == 1 })
	id := f.inService(t)[0].ID
	for i := 0; i < 3; i++ {
		if err := f.cloud.RegisterInstancesWithLoadBalancer(ctx, f.elbName, id); err != nil {
			t.Fatal(err)
		}
	}
	elb, err := f.cloud.DescribeLoadBalancer(ctx, f.elbName)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range elb.Instances {
		if r == id {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("instance registered %d times", n)
	}
}

func TestLaunchConfigDeletionAndASGValidation(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	ctx := context.Background()
	if err := f.cloud.DeleteLaunchConfiguration(ctx, "nope"); ErrorCode(err) != ErrCodeLaunchConfigNotFound {
		t.Errorf("delete missing LC: %v", err)
	}
	// ASG referencing an unknown ELB.
	err := f.cloud.CreateAutoScalingGroup(ctx, ASG{
		Name: "g2", LaunchConfigName: f.lcName, Min: 0, Max: 1, Desired: 0,
		LoadBalancers: []string{"ghost-elb"},
	})
	if ErrorCode(err) != ErrCodeLoadBalancerNotFound {
		t.Errorf("ASG with ghost ELB: %v", err)
	}
	// ASG with empty name.
	if err := f.cloud.CreateAutoScalingGroup(ctx, ASG{LaunchConfigName: f.lcName, Max: 1}); ErrorCode(err) != ErrCodeValidationError {
		t.Errorf("ASG with empty name: %v", err)
	}
	// Duplicate ASG.
	if err := f.cloud.CreateAutoScalingGroup(ctx, ASG{Name: f.asgName, LaunchConfigName: f.lcName, Max: 1}); ErrorCode(err) != ErrCodeAlreadyExists {
		t.Errorf("duplicate ASG: %v", err)
	}
	// Update with unknown LC.
	if err := f.cloud.UpdateAutoScalingGroup(ctx, f.asgName, "ghost-lc", -1, -1, -1); ErrorCode(err) != ErrCodeLaunchConfigNotFound {
		t.Errorf("update to ghost LC: %v", err)
	}
	// Update producing invalid bounds.
	if err := f.cloud.UpdateAutoScalingGroup(ctx, f.asgName, "", 5, 2, -1); ErrorCode(err) != ErrCodeValidationError {
		t.Errorf("invalid bounds: %v", err)
	}
	// Update of unknown group / desired of unknown group.
	if err := f.cloud.UpdateAutoScalingGroup(ctx, "ghost", "", -1, -1, -1); ErrorCode(err) != ErrCodeASGNotFound {
		t.Errorf("update ghost ASG: %v", err)
	}
	if err := f.cloud.SetDesiredCapacity(ctx, "ghost", 1); ErrorCode(err) != ErrCodeASGNotFound {
		t.Errorf("desired of ghost ASG: %v", err)
	}
}

func TestTerminateEdgeCases(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	ctx := context.Background()
	if err := f.cloud.TerminateInstance(ctx, "i-ghost"); ErrorCode(err) != ErrCodeInvalidInstance {
		t.Errorf("terminate ghost: %v", err)
	}
	if err := f.cloud.TerminateInstanceInAutoScalingGroup(ctx, "i-ghost", false); ErrorCode(err) != ErrCodeInvalidInstance {
		t.Errorf("asg-terminate ghost: %v", err)
	}
	if _, err := f.cloud.DescribeScalingActivities(ctx, "ghost"); ErrorCode(err) != ErrCodeASGNotFound {
		t.Errorf("activities of ghost: %v", err)
	}
}

func TestKeyPairAndImageEdgeCases(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	ctx := context.Background()
	if err := f.cloud.ImportKeyPair(ctx, f.keyName); ErrorCode(err) != ErrCodeAlreadyExists {
		t.Errorf("duplicate key: %v", err)
	}
	if err := f.cloud.DeleteKeyPair(ctx, "nope"); ErrorCode(err) != ErrCodeInvalidKeyPair {
		t.Errorf("delete missing key: %v", err)
	}
	if _, err := f.cloud.CreateSecurityGroup(ctx, f.sgName, nil); ErrorCode(err) != ErrCodeAlreadyExists {
		t.Errorf("duplicate sg: %v", err)
	}
	if err := f.cloud.DeleteSecurityGroup(ctx, "nope"); ErrorCode(err) != ErrCodeInvalidGroupNotFound {
		t.Errorf("delete missing sg: %v", err)
	}
	if err := f.cloud.DeregisterImage(ctx, "ami-ghost"); ErrorCode(err) != ErrCodeInvalidAMINotFound {
		t.Errorf("deregister ghost ami: %v", err)
	}
	// Double deregistration.
	if err := f.cloud.DeregisterImage(ctx, f.amiV1); err != nil {
		t.Fatal(err)
	}
	if err := f.cloud.DeregisterImage(ctx, f.amiV1); ErrorCode(err) != ErrCodeInvalidAMINotFound {
		t.Errorf("double deregister: %v", err)
	}
}

func TestDeleteASGUnknown(t *testing.T) {
	f := newFixture(t, 1, FastProfile())
	if err := f.cloud.DeleteAutoScalingGroup(context.Background(), "ghost"); ErrorCode(err) != ErrCodeASGNotFound {
		t.Errorf("delete ghost ASG: %v", err)
	}
}
