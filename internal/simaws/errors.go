package simaws

import (
	"errors"
	"fmt"
)

// AWS-style API error codes returned by the simulator. The names mirror the
// real EC2/ASG/ELB error code vocabulary so that fault trees and assertions
// can key off them exactly as the paper's implementation keyed off AWS
// error codes.
const (
	ErrCodeThrottling            = "Throttling"
	ErrCodeRequestLimitExceeded  = "RequestLimitExceeded"
	ErrCodeInvalidAMINotFound    = "InvalidAMIID.NotFound"
	ErrCodeInvalidKeyPair        = "InvalidKeyPair.NotFound"
	ErrCodeInvalidGroupNotFound  = "InvalidGroup.NotFound"
	ErrCodeInvalidInstance       = "InvalidInstanceID.NotFound"
	ErrCodeLaunchConfigNotFound  = "LaunchConfigurationNotFound"
	ErrCodeASGNotFound           = "AutoScalingGroupNotFound"
	ErrCodeLoadBalancerNotFound  = "LoadBalancerNotFound"
	ErrCodeServiceUnavailable    = "ServiceUnavailable"
	ErrCodeInstanceLimitExceeded = "InstanceLimitExceeded"
	ErrCodeValidationError       = "ValidationError"
	ErrCodeAlreadyExists         = "AlreadyExists"
)

// APIError is an AWS-style error with a machine-readable code.
type APIError struct {
	// Code is one of the ErrCode* constants.
	Code string
	// Op is the API operation that failed, e.g. "DescribeAutoScalingGroups".
	Op string
	// Message is a human-readable explanation.
	Message string
}

var _ error = (*APIError)(nil)

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Op, e.Code, e.Message)
}

// newErr builds an APIError. Every simulated API error flows through
// here, which makes it the one choke point for the error-by-code counter.
func newErr(op, code, format string, args ...any) *APIError {
	mAPIErrors.With(op, code).Inc()
	return &APIError{Code: code, Op: op, Message: fmt.Sprintf(format, args...)}
}

// ErrorCode extracts the AWS error code from err, or "" if err is not an
// APIError.
func ErrorCode(err error) string {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Code
	}
	return ""
}

// IsNotFound reports whether err is any of the *.NotFound family of codes.
func IsNotFound(err error) bool {
	switch ErrorCode(err) {
	case ErrCodeInvalidAMINotFound, ErrCodeInvalidKeyPair,
		ErrCodeInvalidGroupNotFound, ErrCodeInvalidInstance,
		ErrCodeLaunchConfigNotFound, ErrCodeASGNotFound,
		ErrCodeLoadBalancerNotFound:
		return true
	}
	return false
}

// IsRetryable reports whether err represents a transient condition that a
// caller (notably the consistent API layer) should retry.
func IsRetryable(err error) bool {
	switch ErrorCode(err) {
	case ErrCodeThrottling, ErrCodeRequestLimitExceeded, ErrCodeServiceUnavailable:
		return true
	}
	return false
}
