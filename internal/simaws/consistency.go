package simaws

import "time"

// Eventual consistency model: the reconciler records a full deep-copy
// snapshot of account state every tick. Describe* calls are served either
// from live state or — with probability Profile.StaleProb — from the most
// recent snapshot older than a sampled lag. This reproduces the behaviour
// the paper's "consistent AWS API layer" (§IV) exists to mask: reads that
// do not yet reflect a recently acknowledged mutation.

// snapshot is an immutable deep copy of the whole account at one instant.
type snapshot struct {
	at        time.Time
	images    map[string]Image
	keyPairs  map[string]KeyPair
	sgs       map[string]SecurityGroup
	lcs       map[string]LaunchConfig
	asgs      map[string]ASG
	elbs      map[string]LoadBalancer
	instances map[string]Instance
}

// maxSnapshotAge bounds the retained history.
const maxSnapshotAge = 30 * time.Second

// captureSnapshot deep-copies current state. Caller must hold mu.
func (c *Cloud) captureSnapshot() snapshot {
	s := snapshot{
		at:        c.now(),
		images:    make(map[string]Image, len(c.images)),
		keyPairs:  make(map[string]KeyPair, len(c.keyPairs)),
		sgs:       make(map[string]SecurityGroup, len(c.sgs)),
		lcs:       make(map[string]LaunchConfig, len(c.lcs)),
		asgs:      make(map[string]ASG, len(c.asgs)),
		elbs:      make(map[string]LoadBalancer, len(c.elbs)),
		instances: make(map[string]Instance, len(c.instances)),
	}
	for id, v := range c.images {
		s.images[id] = copyImage(v)
	}
	for id, v := range c.keyPairs {
		s.keyPairs[id] = *v
	}
	for id, v := range c.sgs {
		s.sgs[id] = copySG(v)
	}
	for id, v := range c.lcs {
		s.lcs[id] = copyLC(v)
	}
	for id, v := range c.asgs {
		s.asgs[id] = copyASG(v)
	}
	for id, v := range c.elbs {
		s.elbs[id] = copyELB(v)
	}
	for id, v := range c.instances {
		s.instances[id] = copyInstance(v)
	}
	return s
}

// recordSnapshot appends a snapshot and prunes old history. Caller must
// hold mu.
func (c *Cloud) recordSnapshot() {
	s := c.captureSnapshot()
	c.snapshots = append(c.snapshots, s)
	cutoff := s.at.Add(-maxSnapshotAge)
	firstKept := 0
	for firstKept < len(c.snapshots)-1 && c.snapshots[firstKept].at.Before(cutoff) {
		firstKept++
	}
	if firstKept > 0 {
		c.snapshots = append([]snapshot(nil), c.snapshots[firstKept:]...)
	}
}

// view returns the state a describe call observes: usually live state,
// sometimes a stale snapshot. Caller must hold mu; the returned snapshot
// is safe to read after releasing mu.
func (c *Cloud) view() snapshot {
	if c.profile.StaleProb > 0 && len(c.snapshots) > 0 && c.rng.Float64() < c.profile.StaleProb {
		mStaleReads.Inc()
		lag := c.profile.StaleLag.Sample(c.rng)
		target := c.now().Add(-lag)
		// Newest snapshot at or before target; fall back to oldest.
		best := c.snapshots[0]
		for _, s := range c.snapshots {
			if !s.at.After(target) {
				best = s
			}
		}
		return best
	}
	return c.captureSnapshot()
}

func copyImage(v *Image) Image {
	out := *v
	out.Services = append([]string(nil), v.Services...)
	return out
}

func copySG(v *SecurityGroup) SecurityGroup {
	out := *v
	out.IngressPorts = append([]int(nil), v.IngressPorts...)
	return out
}

func copyLC(v *LaunchConfig) LaunchConfig {
	out := *v
	out.SecurityGroups = append([]string(nil), v.SecurityGroups...)
	return out
}

func copyASG(v *ASG) ASG {
	out := *v
	out.LoadBalancers = append([]string(nil), v.LoadBalancers...)
	out.Instances = append([]string(nil), v.Instances...)
	out.Activities = append([]Activity(nil), v.Activities...)
	return out
}

func copyELB(v *LoadBalancer) LoadBalancer {
	out := *v
	out.Instances = append([]string(nil), v.Instances...)
	return out
}

func copyInstance(v *Instance) Instance {
	out := *v
	out.Services = append([]string(nil), v.Services...)
	out.SecurityGroups = append([]string(nil), v.SecurityGroups...)
	return out
}
