package simaws

import (
	"fmt"
	"sort"
	"time"
)

// launchRetryInterval paces repeated launch attempts after a failure, so a
// broken launch configuration produces a steady trickle of Failed
// activities rather than one per tick.
const launchRetryInterval = 10 * time.Second

// tick advances instance lifecycles and reconciles every ASG toward its
// desired capacity, then records an eventual-consistency snapshot.
func (c *Cloud) tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()

	// Instance lifecycle transitions.
	for _, inst := range c.instances {
		switch inst.State {
		case StatePending:
			if !now.Before(inst.ReadyAt) {
				inst.State = StateInService
				if asg, ok := c.asgs[inst.ASGName]; ok {
					c.addActivity(asg, ActivitySuccessful,
						fmt.Sprintf("Launching a new EC2 instance: %s", inst.ID),
						"an instance was started in response to a difference between desired and actual capacity",
						"")
				}
				c.publish(fmt.Sprintf("instance %s is now in-service", inst.ID),
					map[string]string{"instanceid": inst.ID, "amiid": inst.ImageID})
			}
		case StateTerminating:
			if !now.Before(inst.TerminateAt) {
				inst.State = StateTerminated
				c.publish(fmt.Sprintf("instance %s terminated", inst.ID),
					map[string]string{"instanceid": inst.ID})
			}
		}
	}

	// ASG reconciliation.
	names := make([]string, 0, len(c.asgs))
	for name := range c.asgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.reconcileASG(c.asgs[name], now)
	}

	c.recordSnapshot()
}

// reconcileASG refreshes membership, launches replacements toward desired
// capacity, scales in excess instances, and keeps ELB registration in sync.
// Caller must hold mu.
func (c *Cloud) reconcileASG(asg *ASG, now time.Time) {
	// Rebuild membership from instance records (live members only).
	var members []*Instance
	for _, inst := range c.instances {
		if inst.ASGName == asg.Name && (inst.State == StatePending || inst.State == StateInService) {
			members = append(members, inst)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	asg.Instances = asg.Instances[:0]
	for _, m := range members {
		asg.Instances = append(asg.Instances, m.ID)
	}

	switch {
	case len(members) < asg.Desired:
		if backoffUntil, ok := c.launchBackoff[asg.Name]; ok && now.Before(backoffUntil) {
			break
		}
		for i := len(members); i < asg.Desired; i++ {
			if !c.launchForASG(asg) {
				c.launchBackoff[asg.Name] = now.Add(launchRetryInterval)
				break
			}
		}
	case len(members) > asg.Desired:
		c.scaleIn(asg, members, len(members)-asg.Desired)
	}

	// ELB registration reconciliation: every in-service member should be
	// registered with every attached load balancer.
	if !c.elbDisrupted {
		for _, lbName := range asg.LoadBalancers {
			elb, ok := c.elbs[lbName]
			if !ok {
				continue
			}
			for _, m := range members {
				if m.State == StateInService && !containsString(elb.Instances, m.ID) {
					elb.Instances = append(elb.Instances, m.ID)
				}
			}
		}
	}
}

// launchForASG attempts to launch one instance for the group, recording a
// Failed activity and returning false when the launch cannot proceed.
// Caller must hold mu.
func (c *Cloud) launchForASG(asg *ASG) bool {
	fail := func(code, format string, args ...any) bool {
		msg := fmt.Sprintf(format, args...)
		c.addActivity(asg, ActivityFailed, "Launching a new EC2 instance",
			"an instance was started in response to a difference between desired and actual capacity",
			code+": "+msg)
		return false
	}
	if c.atLimit() {
		return fail(ErrCodeInstanceLimitExceeded,
			"you have requested more instances than your current instance limit of %d allows",
			c.profile.InstanceLimit)
	}
	lc, ok := c.lcs[asg.LaunchConfigName]
	if !ok {
		return fail(ErrCodeLaunchConfigNotFound, "launch configuration %q not found", asg.LaunchConfigName)
	}
	img, ok := c.images[lc.ImageID]
	if !ok || !img.Available {
		return fail(ErrCodeInvalidAMINotFound, "the image id %q does not exist", lc.ImageID)
	}
	if _, ok := c.keyPairs[lc.KeyName]; !ok {
		return fail(ErrCodeInvalidKeyPair, "the key pair %q does not exist", lc.KeyName)
	}
	for _, sg := range lc.SecurityGroups {
		if _, ok := c.sgs[sg]; !ok {
			return fail(ErrCodeInvalidGroupNotFound, "the security group %q does not exist", sg)
		}
	}

	id := c.newID("i")
	now := c.now()
	inst := &Instance{
		ID:               id,
		ImageID:          lc.ImageID,
		Version:          img.Version,
		Services:         append([]string(nil), img.Services...),
		KeyName:          lc.KeyName,
		SecurityGroups:   append([]string(nil), lc.SecurityGroups...),
		InstanceType:     lc.InstanceType,
		LaunchConfigName: lc.Name,
		ASGName:          asg.Name,
		State:            StatePending,
		LaunchTime:       now,
		ReadyAt:          now.Add(c.profile.BootTime.Sample(c.rng)),
	}
	c.instances[id] = inst
	asg.Instances = append(asg.Instances, id)
	c.addActivity(asg, ActivityInProgress,
		fmt.Sprintf("Launching a new EC2 instance: %s", id),
		"an instance was started in response to a difference between desired and actual capacity", "")
	return true
}

// scaleIn terminates count excess members. Following the AWS default
// termination policy, instances launched from a launch configuration other
// than the group's current one go first, then the oldest instances.
// Caller must hold mu.
func (c *Cloud) scaleIn(asg *ASG, members []*Instance, count int) {
	sorted := append([]*Instance(nil), members...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		aOld := a.LaunchConfigName != asg.LaunchConfigName
		bOld := b.LaunchConfigName != asg.LaunchConfigName
		if aOld != bOld {
			return aOld
		}
		if !a.LaunchTime.Equal(b.LaunchTime) {
			return a.LaunchTime.Before(b.LaunchTime)
		}
		return a.ID < b.ID
	})
	for i := 0; i < count && i < len(sorted); i++ {
		c.beginTerminate(sorted[i], "a difference between desired and actual capacity shrinking the group")
	}
}
