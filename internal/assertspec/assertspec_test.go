package assertspec

import (
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/process"
)

// processScaleOutSpecText references the scale-out operation's
// specification, proving the two packages compose.
const processScaleOutSpecText = process.ScaleOutSpecText

func TestParseDefaultSpec(t *testing.T) {
	spec := DefaultSpec()
	if got := len(spec.Bindings()); got != 17 {
		t.Errorf("bindings = %d", got)
	}
	if got := len(spec.ByStep("step7")); got != 6 {
		t.Errorf("step7 bindings = %d", got)
	}
	if got := len(spec.ByStep("step8")); got != 6 {
		t.Errorf("step8 bindings = %d", got)
	}
	if got := len(spec.Periodic()); got != 1 {
		t.Errorf("periodic bindings = %d", got)
	}
	if got := len(spec.TimeoutsFor("step6")); got != 1 {
		t.Errorf("step6 timeouts = %d", got)
	}
	if got := len(spec.ByStep("step1")); got != 0 {
		t.Errorf("step1 bindings = %d", got)
	}
}

func TestParseLineForms(t *testing.T) {
	src := `
# comment and blank lines are skipped

on step3 assert asg-instance-count want=4 window=10m
every 45s assert elb-instance-count want={min}
after step5 timeout assert asg-version-count want={next}
`
	spec, err := Parse(src, assertion.DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	bs := spec.Bindings()
	if len(bs) != 3 {
		t.Fatalf("bindings = %d", len(bs))
	}
	if bs[0].Kind != TriggerStep || bs[0].StepID != "step3" ||
		bs[0].CheckID != "asg-instance-count" ||
		bs[0].Params["want"] != "4" || bs[0].Params["window"] != "10m" {
		t.Errorf("binding 0 = %+v", bs[0])
	}
	if bs[1].Kind != TriggerPeriodic || bs[1].Every != 45*time.Second {
		t.Errorf("binding 1 = %+v", bs[1])
	}
	if bs[2].Kind != TriggerStepTimeout || bs[2].StepID != "step5" {
		t.Errorf("binding 2 = %+v", bs[2])
	}
	if bs[0].Line != 4 || bs[1].Line != 5 || bs[2].Line != 6 {
		t.Errorf("source lines = %d,%d,%d", bs[0].Line, bs[1].Line, bs[2].Line)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no bindings"},
		{"comments only", "# nothing\n", "no bindings"},
		{"bad head", "when step1 assert x", "'on', 'every' or 'after'"},
		{"missing step", "on", "expected step id"},
		{"missing assert", "on step1 evaluate x", "expected 'assert'"},
		{"missing check", "on step1 assert", "check id"},
		{"bad duration", "every soon assert asg-instance-count", "invalid duration"},
		{"negative duration", "every -5s assert asg-instance-count", "invalid duration"},
		{"missing timeout kw", "after step5 assert x", "expected 'timeout'"},
		{"bad param", "on step1 assert asg-instance-count want", "malformed parameter"},
		{"empty key", "on step1 assert asg-instance-count =v", "malformed parameter"},
		{"unknown check", "on step1 assert no-such-check", "unknown check"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src, assertion.DefaultRegistry())
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestParseWithoutRegistrySkipsCheckValidation(t *testing.T) {
	spec, err := Parse("on step1 assert totally-custom-check", nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Bindings()[0].CheckID != "totally-custom-check" {
		t.Fatal("check id lost")
	}
}

func TestResolveSubstitutesAndSkips(t *testing.T) {
	b := Binding{
		CheckID: "asg-version-count",
		Params:  assertion.Params{"want": "{progress}", "extra": "literal"},
	}
	base := assertion.Params{"asgid": "g"}
	params, ok := b.Resolve(base, map[string]string{"progress": "3"})
	if !ok {
		t.Fatal("resolution failed")
	}
	if params["want"] != "3" || params["extra"] != "literal" || params["asgid"] != "g" {
		t.Errorf("params = %v", params)
	}
	// Base untouched.
	if _, exists := base["want"]; exists {
		t.Error("Resolve mutated base")
	}
	// Unresolvable variable: the binding is skipped.
	if _, ok := b.Resolve(base, map[string]string{}); ok {
		t.Error("unresolved placeholder accepted")
	}
}

func TestResolveNoParams(t *testing.T) {
	b := Binding{CheckID: "x"}
	params, ok := b.Resolve(assertion.Params{"a": "1"}, nil)
	if !ok || params["a"] != "1" {
		t.Fatalf("params = %v ok = %v", params, ok)
	}
}

func TestTriggerKindString(t *testing.T) {
	for k, want := range map[TriggerKind]string{
		TriggerStep: "on-step", TriggerPeriodic: "periodic",
		TriggerStepTimeout: "step-timeout", TriggerKind(0): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}

func TestScaleOutSpecParses(t *testing.T) {
	spec, err := Parse(processScaleOutSpecText, assertion.DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.ByStep("sostep5")) != 2 {
		t.Errorf("sostep5 bindings = %d", len(spec.ByStep("sostep5")))
	}
	if len(spec.TimeoutsFor("sostep3")) != 1 {
		t.Errorf("sostep3 timeouts = %d", len(spec.TimeoutsFor("sostep3")))
	}
}
