// Package assertspec implements the assertion specification language the
// paper names as future work (§VIII: "In order to simplify specifying
// boilerplate assertions, we are designing an assertion specification
// language"). A spec is a line-oriented text document binding checks from
// the assertion library to process triggers:
//
//	# post-step assertions (evaluated when the step's log line arrives)
//	on step2 assert lc-exists
//	on step7 assert asg-version-count want={progress}
//	on step7 assert instance-version instanceid={instanceid}
//
//	# a periodic assertion, started/stopped with the process
//	every 60s assert asg-instance-count want={min}
//
//	# a one-off timer armed when the step begins: if the next step's log
//	# line does not arrive within the step's historical duration x slack,
//	# the assertion is evaluated (trigger source "timer")
//	after step6 timeout assert asg-version-count want={next}
//
// Parameter values may reference {variables} resolved at evaluation time
// from the operation's expectation and the annotated log event (e.g. {n},
// {min}, {progress}, {next}, {instanceid}). A binding whose parameters
// cannot be fully resolved is skipped — e.g. instance-version when the
// triggering line carries no instance id.
package assertspec

import (
	"fmt"
	"strings"
	"time"

	"poddiagnosis/internal/assertion"
)

// TriggerKind distinguishes the binding trigger families.
type TriggerKind int

// Trigger kinds.
const (
	// TriggerStep evaluates after a step's log line.
	TriggerStep TriggerKind = iota + 1
	// TriggerPeriodic evaluates on a fixed period while the process runs.
	TriggerPeriodic
	// TriggerStepTimeout evaluates if the step does not complete in time.
	TriggerStepTimeout
)

// String implements fmt.Stringer.
func (k TriggerKind) String() string {
	switch k {
	case TriggerStep:
		return "on-step"
	case TriggerPeriodic:
		return "periodic"
	case TriggerStepTimeout:
		return "step-timeout"
	default:
		return "unknown"
	}
}

// Binding attaches one check to one trigger.
type Binding struct {
	// Kind is the trigger family.
	Kind TriggerKind `json:"kind"`
	// StepID applies to TriggerStep and TriggerStepTimeout.
	StepID string `json:"stepId,omitempty"`
	// Every applies to TriggerPeriodic.
	Every time.Duration `json:"every,omitempty"`
	// CheckID names the assertion to evaluate.
	CheckID string `json:"checkId"`
	// Params are the binding's explicit parameters; values may contain
	// {variable} placeholders.
	Params assertion.Params `json:"params,omitempty"`
	// Line is the 1-based source line, for error reporting.
	Line int `json:"line"`
}

// Spec is a parsed assertion specification.
type Spec struct {
	bindings []Binding
}

// Bindings returns all bindings in source order.
func (s *Spec) Bindings() []Binding {
	return append([]Binding(nil), s.bindings...)
}

// ByStep returns the TriggerStep bindings for the given step.
func (s *Spec) ByStep(stepID string) []Binding {
	return s.filter(func(b Binding) bool { return b.Kind == TriggerStep && b.StepID == stepID })
}

// Periodic returns the periodic bindings.
func (s *Spec) Periodic() []Binding {
	return s.filter(func(b Binding) bool { return b.Kind == TriggerPeriodic })
}

// TimeoutsFor returns the step-timeout bindings armed when the given step
// begins.
func (s *Spec) TimeoutsFor(stepID string) []Binding {
	return s.filter(func(b Binding) bool { return b.Kind == TriggerStepTimeout && b.StepID == stepID })
}

func (s *Spec) filter(pred func(Binding) bool) []Binding {
	var out []Binding
	for _, b := range s.bindings {
		if pred(b) {
			out = append(out, b)
		}
	}
	return out
}

// Parse reads a specification document. The registry, when non-nil, is
// used to reject bindings referencing unknown checks.
func Parse(src string, registry *assertion.Registry) (*Spec, error) {
	spec := &Spec{}
	for i, raw := range strings.Split(src, "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b, err := parseLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		if registry != nil {
			if _, ok := registry.Lookup(b.CheckID); !ok {
				return nil, fmt.Errorf("assertspec: line %d: unknown check %q", lineNo, b.CheckID)
			}
		}
		spec.bindings = append(spec.bindings, b)
	}
	if len(spec.bindings) == 0 {
		return nil, fmt.Errorf("assertspec: no bindings in specification")
	}
	return spec, nil
}

// parseLine parses one binding line.
func parseLine(line string, lineNo int) (Binding, error) {
	fields := strings.Fields(line)
	fail := func(format string, args ...any) (Binding, error) {
		return Binding{}, fmt.Errorf("assertspec: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	b := Binding{Line: lineNo}
	idx := 0
	next := func() (string, bool) {
		if idx >= len(fields) {
			return "", false
		}
		f := fields[idx]
		idx++
		return f, true
	}

	head, _ := next()
	switch head {
	case "on":
		b.Kind = TriggerStep
		step, ok := next()
		if !ok {
			return fail("expected step id after 'on'")
		}
		b.StepID = step
	case "every":
		b.Kind = TriggerPeriodic
		durStr, ok := next()
		if !ok {
			return fail("expected duration after 'every'")
		}
		d, err := time.ParseDuration(durStr)
		if err != nil || d <= 0 {
			return fail("invalid duration %q", durStr)
		}
		b.Every = d
	case "after":
		b.Kind = TriggerStepTimeout
		step, ok := next()
		if !ok {
			return fail("expected step id after 'after'")
		}
		b.StepID = step
		kw, ok := next()
		if !ok || kw != "timeout" {
			return fail("expected 'timeout' after the step id")
		}
	default:
		return fail("expected 'on', 'every' or 'after', got %q", head)
	}

	kw, ok := next()
	if !ok || kw != "assert" {
		return fail("expected 'assert'")
	}
	checkID, ok := next()
	if !ok {
		return fail("expected a check id after 'assert'")
	}
	b.CheckID = checkID

	for {
		kv, ok := next()
		if !ok {
			break
		}
		key, value, found := strings.Cut(kv, "=")
		if !found || key == "" {
			return fail("malformed parameter %q (want key=value)", kv)
		}
		if b.Params == nil {
			b.Params = assertion.Params{}
		}
		b.Params[key] = value
	}
	return b, nil
}

// Resolve substitutes {variable} placeholders in the binding's parameters
// from vars and merges them over base. It reports ok=false when any
// placeholder stays unresolved — the binding should then be skipped.
func (b Binding) Resolve(base assertion.Params, vars map[string]string) (assertion.Params, bool) {
	out := base.Clone()
	for k, v := range b.Params {
		resolved := v
		for name, val := range vars {
			resolved = strings.ReplaceAll(resolved, "{"+name+"}", val)
		}
		if strings.Contains(resolved, "{") {
			return nil, false
		}
		out[k] = resolved
	}
	return out, true
}

// DefaultSpecText is the rolling-upgrade assertion specification that
// reproduces the paper's experiment setup (§V.B): step-specific assertions
// after each stage, low-level configuration double checks, the high-level
// version assertion after each completion of the loop, a periodic capacity
// assertion, and one-off timers on the steps whose completion can stall
// silently.
const DefaultSpecText = `
# --- post-step assertions ------------------------------------------------
on step2 assert lc-exists
on step4 assert elb-reachable
on step7 assert asg-version-count want={progress}
on step7 assert instance-version instanceid={instanceid}
on step7 assert asg-uses-ami
on step7 assert asg-uses-keypair
on step7 assert asg-uses-sg
on step7 assert asg-uses-instance-type
on step8 assert asg-version-count want={n}
on step8 assert asg-instance-count want={n}
on step8 assert asg-uses-ami
on step8 assert asg-uses-keypair
on step8 assert asg-uses-sg
on step8 assert asg-uses-instance-type

# --- periodic capacity assertion (started/stopped with the process) ------
every 60s assert asg-instance-count want={min}

# --- one-off step timers --------------------------------------------------
after step5 timeout assert asg-version-count want={next}
after step6 timeout assert asg-version-count want={next}
`

// DefaultSpec parses DefaultSpecText against the default registry; it
// panics on error since the text is a compile-time constant covered by
// tests.
func DefaultSpec() *Spec {
	spec, err := Parse(DefaultSpecText, assertion.DefaultRegistry())
	if err != nil {
		panic("assertspec: default spec invalid: " + err.Error())
	}
	return spec
}
