package consistentapi

import (
	"context"
	"errors"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/simaws"
)

func newCloud(t *testing.T, profile simaws.Profile) *simaws.Cloud {
	t.Helper()
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	c := simaws.New(clk, profile, simaws.WithSeed(11))
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func fastCfg() Config {
	return Config{
		MaxAttempts:    6,
		InitialBackoff: 20 * time.Millisecond,
		MaxBackoff:     200 * time.Millisecond,
		CallTimeout:    30 * time.Second,
	}
}

func TestDescribeImageFirstTry(t *testing.T) {
	cloud := newCloud(t, simaws.FastProfile())
	client := New(cloud, fastCfg())
	ctx := context.Background()
	ami, err := cloud.RegisterImage(ctx, "x", "v1", nil)
	if err != nil {
		t.Fatal(err)
	}
	img, ok, err := client.DescribeImage(ctx, ami, nil)
	if err != nil || !ok {
		t.Fatalf("DescribeImage: ok=%v err=%v", ok, err)
	}
	if img.ID != ami {
		t.Errorf("got image %s", img.ID)
	}
}

func TestRetriesThroughStaleness(t *testing.T) {
	profile := simaws.FastProfile()
	profile.StaleProb = 0.9
	profile.StaleLag = clock.Fixed(300 * time.Millisecond)
	profile.TickInterval = 10 * time.Millisecond
	cloud := newCloud(t, profile)
	client := New(cloud, fastCfg())
	ctx := context.Background()

	ami, _ := cloud.RegisterImage(ctx, "x", "v1", nil)
	// Give snapshots time to accumulate so stale reads exist.
	time.Sleep(5 * time.Millisecond)
	if err := cloud.DeregisterImage(ctx, ami); err != nil {
		t.Fatal(err)
	}
	// Retry until the deregistration is visible.
	img, ok, err := client.DescribeImage(ctx, ami, func(i simaws.Image) bool { return !i.Available })
	if err != nil || !ok {
		t.Fatalf("expectation not met through staleness: ok=%v err=%v img=%+v", ok, err, img)
	}
}

func TestExpectationNeverMetTimesOut(t *testing.T) {
	cloud := newCloud(t, simaws.FastProfile())
	cfg := fastCfg()
	cfg.MaxAttempts = 3
	client := New(cloud, cfg)
	ctx := context.Background()
	ami, _ := cloud.RegisterImage(ctx, "x", "v1", nil)
	_, ok, err := client.DescribeImage(ctx, ami, func(simaws.Image) bool { return false })
	if ok {
		t.Fatal("pred satisfied unexpectedly")
	}
	if !errors.Is(err, ErrAPITimeout) {
		t.Fatalf("err = %v, want ErrAPITimeout", err)
	}
}

func TestNotFoundReturnsAfterLimitedRetries(t *testing.T) {
	cloud := newCloud(t, simaws.FastProfile())
	client := New(cloud, fastCfg())
	start := time.Now()
	_, ok, err := client.DescribeImage(context.Background(), "ami-ghost", nil)
	if ok {
		t.Fatal("found a ghost image")
	}
	if simaws.ErrorCode(err) != simaws.ErrCodeInvalidAMINotFound {
		t.Fatalf("err = %v", err)
	}
	// Should not burn all attempts on a stable NotFound.
	if time.Since(start) > 2*time.Second {
		t.Error("NotFound retried too long")
	}
}

func TestContextCancellationPropagates(t *testing.T) {
	cloud := newCloud(t, simaws.FastProfile())
	client := New(cloud, fastCfg())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, ok, err := client.DescribeInstances(ctx, nil)
	if ok {
		t.Fatal("ok with cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryableThrottlingIsRetried(t *testing.T) {
	profile := simaws.FastProfile()
	profile.RatePerSecond = 200 // scaled clock at 1000x: refills fast in sim time
	profile.RateBurst = 2
	cloud := newCloud(t, profile)
	client := New(cloud, fastCfg())
	ctx := context.Background()
	ami, err := cloud.RegisterImage(ctx, "x", "v1", nil)
	if err != nil {
		// Burst may already be consumed; retry directly.
		t.Skipf("setup throttled: %v", err)
	}
	// Exhaust the burst.
	for i := 0; i < 4; i++ {
		_, _ = cloud.DescribeImage(ctx, ami)
	}
	// The consistent layer should absorb throttling.
	_, ok, err := client.DescribeImage(ctx, ami, nil)
	if !ok || err != nil {
		t.Fatalf("throttled call not absorbed: ok=%v err=%v", ok, err)
	}
}

func TestDescribeASGPredicate(t *testing.T) {
	cloud := newCloud(t, simaws.FastProfile())
	client := New(cloud, fastCfg())
	ctx := context.Background()
	ami, _ := cloud.RegisterImage(ctx, "x", "v1", nil)
	_ = cloud.ImportKeyPair(ctx, "k")
	_, _ = cloud.CreateSecurityGroup(ctx, "s", nil)
	_ = cloud.CreateLaunchConfiguration(ctx, simaws.LaunchConfig{Name: "lc", ImageID: ami, KeyName: "k", SecurityGroups: []string{"s"}})
	_ = cloud.CreateAutoScalingGroup(ctx, simaws.ASG{Name: "g", LaunchConfigName: "lc", Min: 0, Max: 4, Desired: 2})
	asg, ok, err := client.DescribeASG(ctx, "g", func(a simaws.ASG) bool { return len(a.Instances) == 2 })
	if err != nil || !ok {
		t.Fatalf("ASG never reached 2 members: ok=%v err=%v (members %d)", ok, err, len(asg.Instances))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxAttempts <= 0 || cfg.InitialBackoff <= 0 || cfg.MaxBackoff <= 0 || cfg.CallTimeout <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestAllWrappersRoundTrip exercises every Describe* wrapper once against
// a fully provisioned account.
func TestAllWrappersRoundTrip(t *testing.T) {
	cloud := newCloud(t, simaws.FastProfile())
	client := New(cloud, fastCfg())
	ctx := context.Background()

	ami, err := cloud.RegisterImage(ctx, "x", "v1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cloud.ImportKeyPair(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.CreateSecurityGroup(ctx, "s", []int{22}); err != nil {
		t.Fatal(err)
	}
	if err := cloud.CreateLaunchConfiguration(ctx, simaws.LaunchConfig{
		Name: "lc", ImageID: ami, KeyName: "k", SecurityGroups: []string{"s"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cloud.CreateLoadBalancer(ctx, "lb"); err != nil {
		t.Fatal(err)
	}
	if err := cloud.CreateAutoScalingGroup(ctx, simaws.ASG{
		Name: "g", LaunchConfigName: "lc", Min: 0, Max: 2, Desired: 1,
		LoadBalancers: []string{"lb"},
	}); err != nil {
		t.Fatal(err)
	}

	if kp, ok, err := client.DescribeKeyPair(ctx, "k"); err != nil || !ok || kp.Name != "k" {
		t.Errorf("DescribeKeyPair: %v %v %+v", ok, err, kp)
	}
	if sg, ok, err := client.DescribeSecurityGroup(ctx, "s"); err != nil || !ok || sg.Name != "s" {
		t.Errorf("DescribeSecurityGroup: %v %v %+v", ok, err, sg)
	}
	if lc, ok, err := client.DescribeLaunchConfig(ctx, "lc", nil); err != nil || !ok || lc.ImageID != ami {
		t.Errorf("DescribeLaunchConfig: %v %v %+v", ok, err, lc)
	}
	if lb, ok, err := client.DescribeELB(ctx, "lb", nil); err != nil || !ok || lb.Name != "lb" {
		t.Errorf("DescribeELB: %v %v %+v", ok, err, lb)
	}
	asg, ok, err := client.DescribeASG(ctx, "g", func(a simaws.ASG) bool { return len(a.Instances) == 1 })
	if err != nil || !ok {
		t.Fatalf("DescribeASG: %v %v", ok, err)
	}
	id := asg.Instances[0]
	if inst, ok, err := client.DescribeInstance(ctx, id, nil); err != nil || !ok || inst.ID != id {
		t.Errorf("DescribeInstance: %v %v %+v", ok, err, inst)
	}
	if insts, ok, err := client.DescribeInstances(ctx, nil); err != nil || !ok || len(insts) != 1 {
		t.Errorf("DescribeInstances: %v %v %d", ok, err, len(insts))
	}
	if acts, ok, err := client.DescribeScalingActivities(ctx, "g", nil); err != nil || !ok || len(acts) == 0 {
		t.Errorf("DescribeScalingActivities: %v %v %d", ok, err, len(acts))
	}
	if got := client.Cloud(); got != cloud {
		t.Error("Cloud() does not return the underlying cloud")
	}
	if client.Clock() == nil {
		t.Error("Clock() nil")
	}
}

// TestEventuallyGeneric exercises the exported generic entry point with a
// composite fetch.
func TestEventuallyGeneric(t *testing.T) {
	cloud := newCloud(t, simaws.FastProfile())
	client := New(cloud, fastCfg())
	ctx := context.Background()
	ami, _ := cloud.RegisterImage(ctx, "x", "v1", nil)
	type pair struct{ id, version string }
	got, ok, err := Eventually(ctx, client, func(ctx context.Context) (pair, error) {
		img, err := cloud.DescribeImage(ctx, ami)
		if err != nil {
			return pair{}, err
		}
		return pair{img.ID, img.Version}, nil
	}, func(p pair) bool { return p.version == "v1" })
	if err != nil || !ok || got.id != ami {
		t.Fatalf("Eventually: %+v %v %v", got, ok, err)
	}
}
