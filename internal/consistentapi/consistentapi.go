// Package consistentapi implements the paper's "consistent AWS API layer"
// (§IV): a wrapper over the simulated cloud API that masks eventual
// consistency with an exponential retry mechanism — if the observed status
// of a resource differs from the caller's expectation, the call is retried
// automatically — and that bounds every evaluation with an API timeout
// (calibrated at the 95th percentile in the paper); evaluations whose
// calls time out are reported as failed-to-evaluate rather than failed.
package consistentapi

import (
	"context"
	"errors"
	"fmt"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/simaws"
)

// ErrAPITimeout is returned when the overall call budget is exhausted
// before the expectation was met and before a definitive answer arrived.
var ErrAPITimeout = errors.New("consistentapi: API timeout")

// Config tunes the retry layer.
type Config struct {
	// MaxAttempts bounds the number of tries per call. Zero means 5.
	MaxAttempts int
	// InitialBackoff is the first retry delay (doubled each retry).
	// Zero means 200ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the delay. Zero means 5s.
	MaxBackoff time.Duration
	// CallTimeout bounds one logical call including retries (the paper's
	// p95-based timeout). Zero means 15s.
	CallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 15 * time.Second
	}
	return c
}

// Client wraps a simulated cloud with consistency-masking retries.
type Client struct {
	cloud *simaws.Cloud
	clk   clock.Clock
	cfg   Config
}

// New returns a Client over the cloud.
func New(cloud *simaws.Cloud, cfg Config) *Client {
	return &Client{cloud: cloud, clk: cloud.Clock(), cfg: cfg.withDefaults()}
}

// Cloud exposes the underlying raw API for callers that explicitly want
// single-shot semantics.
func (c *Client) Cloud() *simaws.Cloud { return c.cloud }

// Clock returns the client's time source.
func (c *Client) Clock() clock.Clock { return c.clk }

// eventually retries fetch until pred accepts the value, a non-retryable
// error other than staleness occurs, or the call budget is exhausted.
// It returns the last observed value; ok reports whether pred was
// satisfied. Terminal resource errors (e.g. NotFound) are returned
// immediately since retrying cannot change them — except that a NotFound
// may itself be stale, so one retry is allowed for not-found conditions.
func eventually[T any](ctx context.Context, c *Client, fetch func(context.Context) (T, error), pred func(T) bool) (T, bool, error) {
	var last T
	// Every read through this layer belongs to POD's own monitoring plane;
	// the tag lets chaos fault injectors storm these calls without touching
	// the operation under diagnosis.
	ctx = simaws.WithPlane(ctx, simaws.PlaneMonitoring)
	cfg := c.cfg
	deadline := c.clk.Now().Add(cfg.CallTimeout)
	backoff := cfg.InitialBackoff
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if c.clk.Now().After(deadline) {
			return last, false, fmt.Errorf("%w after %v: %w", ErrAPITimeout, cfg.CallTimeout, lastErr)
		}
		v, err := fetch(ctx)
		switch {
		case err == nil:
			last = v
			if pred == nil || pred(v) {
				return v, true, nil
			}
			lastErr = errors.New("expectation not met")
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return last, false, err
		case simaws.IsRetryable(err):
			lastErr = err
		case simaws.IsNotFound(err):
			// A not-found can be stale; retry a limited number of times
			// before trusting it.
			lastErr = err
			if attempt >= 1 {
				return last, false, err
			}
		default:
			return last, false, err
		}
		if err := c.clk.Sleep(ctx, backoff); err != nil {
			return last, false, err
		}
		backoff *= 2
		if backoff > cfg.MaxBackoff {
			backoff = cfg.MaxBackoff
		}
	}
	if lastErr == nil {
		lastErr = errors.New("expectation not met")
	}
	return last, false, fmt.Errorf("%w after %d attempts: %w", ErrAPITimeout, cfg.MaxAttempts, lastErr)
}

// Eventually retries fetch until pred accepts the value, a terminal error
// occurs, or the call budget is exhausted. It is the generic entry point
// for composite reads (e.g. resolving an ASG's launch configuration) that
// must be retried as a unit when the combined expectation is unmet.
func Eventually[T any](ctx context.Context, c *Client, fetch func(context.Context) (T, error), pred func(T) bool) (T, bool, error) {
	return eventually(ctx, c, fetch, pred)
}

// DescribeASG fetches the group, retrying while pred is unmet. A nil pred
// returns the first successful read.
func (c *Client) DescribeASG(ctx context.Context, name string, pred func(simaws.ASG) bool) (simaws.ASG, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) (simaws.ASG, error) {
		return c.cloud.DescribeAutoScalingGroup(ctx, name)
	}, pred)
}

// DescribeLaunchConfig fetches a launch configuration with retries.
func (c *Client) DescribeLaunchConfig(ctx context.Context, name string, pred func(simaws.LaunchConfig) bool) (simaws.LaunchConfig, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) (simaws.LaunchConfig, error) {
		return c.cloud.DescribeLaunchConfiguration(ctx, name)
	}, pred)
}

// DescribeImage fetches an AMI with retries.
func (c *Client) DescribeImage(ctx context.Context, id string, pred func(simaws.Image) bool) (simaws.Image, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) (simaws.Image, error) {
		return c.cloud.DescribeImage(ctx, id)
	}, pred)
}

// DescribeKeyPair fetches a key pair with retries.
func (c *Client) DescribeKeyPair(ctx context.Context, name string) (simaws.KeyPair, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) (simaws.KeyPair, error) {
		return c.cloud.DescribeKeyPair(ctx, name)
	}, nil)
}

// DescribeSecurityGroup fetches a security group with retries.
func (c *Client) DescribeSecurityGroup(ctx context.Context, name string) (simaws.SecurityGroup, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) (simaws.SecurityGroup, error) {
		return c.cloud.DescribeSecurityGroup(ctx, name)
	}, nil)
}

// DescribeInstances lists instances, retrying while pred is unmet.
func (c *Client) DescribeInstances(ctx context.Context, pred func([]simaws.Instance) bool) ([]simaws.Instance, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) ([]simaws.Instance, error) {
		return c.cloud.DescribeInstances(ctx)
	}, pred)
}

// DescribeInstance fetches one instance with retries.
func (c *Client) DescribeInstance(ctx context.Context, id string, pred func(simaws.Instance) bool) (simaws.Instance, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) (simaws.Instance, error) {
		return c.cloud.DescribeInstance(ctx, id)
	}, pred)
}

// DescribeELB fetches a load balancer with retries.
func (c *Client) DescribeELB(ctx context.Context, name string, pred func(simaws.LoadBalancer) bool) (simaws.LoadBalancer, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) (simaws.LoadBalancer, error) {
		return c.cloud.DescribeLoadBalancer(ctx, name)
	}, pred)
}

// DescribeScalingActivities fetches the scaling history with retries.
func (c *Client) DescribeScalingActivities(ctx context.Context, name string, pred func([]simaws.Activity) bool) ([]simaws.Activity, bool, error) {
	return eventually(ctx, c, func(ctx context.Context) ([]simaws.Activity, error) {
		return c.cloud.DescribeScalingActivities(ctx, name)
	}, pred)
}
