package poddiagnosis_test

import (
	"fmt"

	pod "poddiagnosis"
)

// ExampleRollingUpgradeModel shows the canonical Figure 2 model's
// structure: its activities in step order, with the step ids the process
// context carries.
func ExampleRollingUpgradeModel() {
	model := pod.RollingUpgradeModel()
	for _, step := range []string{"step1", "step2", "step3", "step4", "step5", "step6", "step7", "step8"} {
		fmt.Printf("%s: %s\n", step, model.ActivityByStep(step).Name)
	}
	// Output:
	// step1: Start rolling upgrade task
	// step2: Update launch configuration
	// step3: Sort instances
	// step4: Remove and deregister old instance from ELB
	// step5: Terminate old instance
	// step6: Wait for ASG to start new instance
	// step7: New instance ready and registered with ELB
	// step8: Rolling upgrade task completed
}

// ExampleParseOperationLine parses one Asgard-style log line into its
// parts — the first stage of the local log processor.
func ExampleParseOperationLine() {
	line := "[2013-10-24 11:41:48,312] [Task:pushing pm--asg] Instance pm on i-7df34041 is ready for use. 4 of 4 instance relaunches done."
	_, task, msg, ok := pod.ParseOperationLine(line)
	fmt.Println(ok)
	fmt.Println(task)
	fmt.Println(msg)
	// Output:
	// true
	// pushing pm--asg
	// Instance pm on i-7df34041 is ready for use. 4 of 4 instance relaunches done.
}

// ExampleParseAssertionSpec parses an assertion specification — the text
// language that binds checks from the assertion library to process
// triggers.
func ExampleParseAssertionSpec() {
	spec, err := pod.ParseAssertionSpec(`
# after each completed replacement, verify the new version count
on step7 assert asg-version-count want={progress}
every 60s assert asg-instance-count want={min}
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, b := range spec.Bindings() {
		fmt.Printf("%s -> %s\n", b.Kind, b.CheckID)
	}
	// Output:
	// on-step -> asg-version-count
	// periodic -> asg-instance-count
}

// ExampleDefaultFaultTrees lists the fault trees of the knowledge base —
// one per assertion, per the paper's §III.B.4.
func ExampleDefaultFaultTrees() {
	repo := pod.DefaultFaultTrees()
	trees := repo.Select("asg-version-count")
	fmt.Println(len(trees))
	fmt.Println(trees[0].ID)
	// Output:
	// 1
	// ft-version-count
}
