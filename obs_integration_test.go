package poddiagnosis

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/rest"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// TestObservabilityEndToEnd scripts a faulty rolling upgrade under a
// monitor, then scrapes the REST surface and asserts that /metrics
// reflects the run's activity across every instrumented layer and that
// /traces holds the diagnosis walk with its fault-tree node test spans.
func TestObservabilityEndToEnd(t *testing.T) {
	clk := clock.NewScaled(1200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := NewLogBus()
	defer bus.Close()
	profile := FastProfile()
	profile.BootTime = clock.Fixed(30 * time.Second)
	profile.TickInterval = time.Second
	cloud := simaws.New(clk, profile, simaws.WithSeed(7), simaws.WithBus(bus))
	cloud.Start()
	defer cloud.Stop()

	ctx := context.Background()
	cluster, err := Deploy(ctx, cloud, "pm", 2, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	newAMI, err := cloud.RegisterImage(ctx, "pm-v2", "v2", upgrade.AppServices)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.UpgradeSpec("pushing pm--asg", newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI

	mon, err := NewMonitor(Config{
		Cloud: cloud,
		Bus:   bus,
		Expect: Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()

	// Fault 2 (key pair changed mid-upgrade): a concurrent team flips the
	// launch configuration once the upgrade creates its own LC, so the
	// monitor must detect and diagnose a wrong-keypair root cause.
	injector := faultinject.NewInjector(cloud, cluster, 7)
	defer injector.Heal()
	injectDone := make(chan struct{})
	go func() {
		defer close(injectDone)
		_ = injector.Inject(ctx, faultinject.KindKeyPairChanged, 10*time.Second, spec.NewLCName, newAMI)
	}()

	rep := NewUpgrader(cloud, bus).Run(ctx, spec)
	<-injectDone
	mon.Drain(ctx, 2*time.Minute)
	mon.Stop()
	_ = rep // the upgrade may fail or limp home mixed-version; either is fine

	detections := mon.Detections()
	if len(detections) == 0 {
		t.Fatal("faulty upgrade produced no detections")
	}
	diagnosed := false
	for _, d := range detections {
		if d.Diagnosis != nil && len(d.Diagnosis.TestsRun) > 0 {
			diagnosed = true
		}
	}
	if !diagnosed {
		t.Fatal("no detection carried a diagnosis with tests run")
	}

	// Serve the observability surface the way podserve does and scrape it.
	srv := httptest.NewServer(rest.NewServer(mon.Checker(), mon.Evaluator(), mon.Diagnoser(),
		rest.WithReady(func() rest.ReadyStatus {
			q := mon.QueueDepth()
			return rest.ReadyStatus{Ready: true, QueueDepth: q.Depth()}
		})))
	defer srv.Close()

	// /readyz first: it both checks the drained engine and puts one
	// request through the HTTP middleware before /metrics renders.
	rResp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready rest.ReadyStatus
	err = json.NewDecoder(rResp.Body).Decode(&ready)
	rResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !ready.Ready {
		t.Errorf("readyz = %+v", ready)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	metrics := string(raw)
	for _, family := range []string{
		// One family per instrumented layer, per the acceptance criteria.
		"pod_simaws_api_calls_total{",
		"pod_simaws_api_errors_total",
		"pod_conformance_check_seconds_bucket{",
		"pod_assertion_evaluations_total{",
		"pod_diagnosis_walk_seconds_bucket{",
		"pod_logbus_dropped_total",
		"pod_logbus_published_total",
		"pod_engine_detections_total{",
		"pod_pipeline_events_total{",
		"pod_http_request_seconds_bucket{",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	// The scripted run must actually move the needles, not just declare
	// the families: failed assertions and at least one diagnosis walk.
	if !strings.Contains(metrics, `status="fail"`) {
		t.Error("no failed assertion evaluation recorded for the faulty run")
	}
	if !strings.Contains(metrics, "pod_diagnosis_tests_total") {
		t.Error("no diagnosis test counter")
	}

	// /traces: a completed diagnosis walk with fault-tree node children.
	tResp, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tResp.Body.Close()
	var traces struct {
		Spans []obs.SpanData `json:"spans"`
	}
	if err := json.NewDecoder(tResp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	walks := map[uint64]obs.SpanData{}
	for _, s := range traces.Spans {
		if s.Name == "diagnosis.walk" {
			walks[s.SpanID] = s
		}
	}
	if len(walks) == 0 {
		t.Fatal("/traces has no diagnosis.walk span")
	}
	childTests := 0
	for _, s := range traces.Spans {
		if s.Name == "diagnosis.test" {
			if parent, ok := walks[s.ParentID]; ok {
				childTests++
				if s.TraceID != parent.TraceID {
					t.Errorf("test span %d has trace %d, parent walk has %d",
						s.SpanID, s.TraceID, parent.TraceID)
				}
				if s.Attrs["node"] == "" {
					t.Errorf("test span %d missing fault-tree node attr", s.SpanID)
				}
			}
		}
	}
	if childTests == 0 {
		t.Error("no diagnosis.test span is linked under a diagnosis.walk span")
	}
}
