// Scale-out: POD-Diagnosis watching a *different* sporadic operation than
// the paper's case study — demonstrating §III.C's generality claim. A new
// process model plus an assertion specification is all it takes: the
// assertion library, the fault trees, conformance checking and the
// diagnosis engine are reused unchanged.
//
// The scenario: the group is scaled from 3 to 6 instances while the
// co-tenant team has filled most of the shared account's instance limit.
// The scale-out stalls; POD-Diagnosis detects the capacity assertion
// failure and diagnoses the account limit as the root cause — the exact
// incident that taught the paper's authors to amend their fault tree
// (§VI.A, wrong-diagnosis class four).
//
//	go run ./examples/scaleout
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pod "poddiagnosis"
)

func main() {
	ctx := context.Background()
	clk := pod.NewScaledClock(200)
	bus := pod.NewLogBus()
	defer bus.Close()

	profile := pod.PaperProfile()
	profile.InstanceLimit = 30
	cloud := pod.NewSimulatedCloud(clk, profile, bus, 17)
	cloud.Start()
	defer cloud.Stop()

	cluster, err := pod.Deploy(ctx, cloud, "pm", 3, "v1")
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		log.Fatal(err)
	}

	// The co-tenant team holds 26 of the 30 account slots: only one more
	// instance fits.
	cloud.SetExternalUsage(26)
	fmt.Println("shared account: 26 of 30 instance slots held by the co-tenant team")

	// Attach the monitor — scale-out model, scale-out assertion spec,
	// everything else reused.
	mon, err := pod.NewMonitor(pod.Config{
		Cloud:         cloud,
		Bus:           bus,
		Model:         pod.ScaleOutModel(),
		AssertionSpec: pod.ScaleOutAssertionSpecText,
		Expect: pod.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   cluster.ImageID,
			NewVersion:   "v1",
			NewLCName:    cluster.LCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  6, // the scale-out target
			MinInService: 3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	mon.Start()

	fmt.Println("scaling group from 3 to 6 instances...")
	rep := pod.NewUpgrader(cloud, bus).RunScaleOut(ctx, pod.ScaleOutSpec{
		TaskID:      "scale-out pm--asg",
		ASGName:     cluster.ASGName,
		ELBName:     cluster.ELBName,
		Target:      6,
		WaitTimeout: 4 * time.Minute,
	})
	_ = clk.Sleep(ctx, 30*time.Second)
	mon.Drain(ctx, 2*time.Minute)
	mon.Stop()

	if rep.Err != nil {
		fmt.Printf("\nscale-out FAILED (as expected): %v\n", rep.Err)
	} else {
		fmt.Printf("\nscale-out completed: %d instances joined\n", len(rep.NewInstances))
	}
	fmt.Printf("POD-Diagnosis detections (%d):\n", len(mon.Detections()))
	for _, d := range mon.Detections() {
		fmt.Printf("\n  %s via %s: %s\n", d.Source, d.TriggerID, d.Message)
		if d.Diagnosis == nil {
			continue
		}
		fmt.Printf("  conclusion: %s (%.2fs, %d tests)\n",
			d.Diagnosis.Conclusion, d.Diagnosis.Duration.Seconds(), len(d.Diagnosis.TestsRun))
		for _, c := range d.Diagnosis.RootCauses {
			fmt.Printf("    ROOT CAUSE: %s\n", c.Description)
		}
		for _, c := range d.Diagnosis.Suspected {
			fmt.Printf("    suspected:  %s\n", c.Description)
		}
	}
}
