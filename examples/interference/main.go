// Interference scenario: the upgrade itself is healthy, but legitimate
// simultaneous operations — an ASG scale-in and co-tenant account
// pressure — confound it (§V.B). POD-Diagnosis detects the capacity
// anomalies and attributes them to the simultaneous operations rather
// than blaming the upgrade.
//
//	go run ./examples/interference
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pod "poddiagnosis"
)

func main() {
	ctx := context.Background()
	clk := pod.NewScaledClock(200)
	bus := pod.NewLogBus()
	defer bus.Close()

	profile := pod.PaperProfile()
	profile.InstanceLimit = 32 // a tight shared account
	cloud := pod.NewSimulatedCloud(clk, profile, bus, 11)
	cloud.Start()
	defer cloud.Stop()

	cluster, err := pod.Deploy(ctx, cloud, "pm", 4, "v1")
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		log.Fatal(err)
	}
	newAMI, err := cloud.RegisterImage(ctx, "pm-v2", "v2", nil)
	if err != nil {
		log.Fatal(err)
	}
	spec := cluster.UpgradeSpec("pushing pm--asg", newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI

	mon, err := pod.NewMonitor(pod.Config{
		Cloud: cloud,
		Bus:   bus,
		Expect: pod.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  4,
		},
		PeriodicInterval: 45 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon.Start()

	injector := pod.NewInjector(cloud, cluster, 23)
	defer injector.Heal()
	go func() {
		// A different operator legitimately scales the group in...
		if err := injector.Interfere(ctx, pod.InterferenceScaleIn, 40*time.Second); err == nil {
			fmt.Println(">> simultaneous operation: ASG scaled in by one")
		}
	}()
	go func() {
		// ...while the co-tenant team fills the shared account.
		if err := injector.Interfere(ctx, pod.InterferenceAccountPressure, 60*time.Second); err == nil {
			fmt.Printf(">> co-tenant team now holds %d instances of the shared account limit\n", cloud.ExternalUsage())
		}
	}()

	fmt.Println("rolling upgrade to v2 starting amid simultaneous operations...")
	report := pod.NewUpgrader(cloud, bus).Run(ctx, spec)
	_ = clk.Sleep(ctx, time.Minute) // let the periodic assertion observe the aftermath
	mon.Drain(ctx, 2*time.Minute)
	mon.Stop()

	fmt.Printf("\nupgrade finished (err=%v)\n", report.Err)
	fmt.Printf("POD-Diagnosis detections (%d):\n", len(mon.Detections()))
	for _, d := range mon.Detections() {
		fmt.Printf("\n  %s via %s: %s\n", d.Source, d.TriggerID, d.Message)
		if d.Diagnosis == nil {
			continue
		}
		fmt.Printf("  conclusion: %s\n", d.Diagnosis.Conclusion)
		for _, c := range d.Diagnosis.RootCauses {
			fmt.Printf("    root cause: %s\n", c.Description)
		}
		for _, c := range d.Diagnosis.Suspected {
			fmt.Printf("    suspected:  %s\n", c.Description)
		}
	}
}
