// Process mining: discover the rolling-upgrade process model (paper
// Figure 2) from nothing but the operation logs of successful runs —
// the offline pipeline of §III.A.
//
//	go run ./examples/processmining
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pod "poddiagnosis"
)

func main() {
	ctx := context.Background()
	clk := pod.NewScaledClock(400)
	bus := pod.NewLogBus()
	defer bus.Close()

	profile := pod.PaperProfile()
	profile.StaleProb = 0 // keep the training logs clean
	cloud := pod.NewSimulatedCloud(clk, profile, bus, 5)
	cloud.Start()
	defer cloud.Stop()

	// Capture every operation-node log line.
	var lines []pod.MinedLine
	sub := bus.Subscribe(16384, func(e pod.LogEvent) bool { return e.Type == "asgard" })
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			_, task, body, ok := pod.ParseOperationLine(e.Message)
			if !ok {
				continue
			}
			lines = append(lines, pod.MinedLine{Timestamp: e.Timestamp, InstanceID: task, Body: body})
		}
	}()

	// Generate training data: four successful upgrades.
	cluster, err := pod.Deploy(ctx, cloud, "pm", 3, "v1")
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		log.Fatal(err)
	}
	up := pod.NewUpgrader(cloud, bus)
	for i := 0; i < 4; i++ {
		version := fmt.Sprintf("v%d", i+2)
		ami, err := cloud.RegisterImage(ctx, "pm-"+version, version, nil)
		if err != nil {
			log.Fatal(err)
		}
		rep := up.Run(ctx, cluster.UpgradeSpec(fmt.Sprintf("push-%d", i), ami))
		if rep.Err != nil {
			log.Fatalf("training upgrade %d failed: %v", i, rep.Err)
		}
		fmt.Printf("training run %d: %d instances replaced\n", i+1, len(rep.Replaced))
	}
	sub.Cancel()
	<-done

	// Mine.
	fmt.Printf("\nmining %d log lines...\n\n", len(lines))
	res, err := pod.NewMiner().Mine(lines, "mined-rolling-upgrade")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d activities across %d traces; replacement loop found: %v\n\n",
		len(res.Clusters), res.Traces, res.HasLoop())
	for _, c := range res.Clusters {
		fmt.Printf("  %-44s x%-3d  /%s/\n", c.Name, c.Count, c.Regex)
	}
	fmt.Println()
	fmt.Print(res.RenderDFG())

	// The mined model is directly usable: classify a fresh log line.
	line := "Instance pm on i-7df34041 is ready for use. 3 of 3 instance relaunches done."
	if n, ok := res.Model.Classify(line); ok {
		fmt.Printf("\nthe mined model classifies %q\n  as activity %q\n", line, n.ID)
	}

	// Compare against the hand-built Figure 2 model.
	truth := pod.RollingUpgradeModel()
	matched := 0
	for _, c := range res.Clusters {
		for _, ex := range c.Examples {
			if _, ok := truth.Classify(ex); ok {
				matched++
				break
			}
		}
	}
	fmt.Printf("\n%d of %d mined activities correspond to canonical Figure 2 activities\n", matched, len(res.Clusters))
}
