// Mixed-version fault: the paper's most challenging scenario (§V.C).
// While our rolling upgrade to v2 is underway, an independent team pushes
// its own release by switching the auto scaling group to a different
// launch configuration — the classic continuous-deployment race. The
// system ends up with mixed versions; POD-Diagnosis detects the failing
// version assertion and walks the fault tree to the root cause, exactly
// like the diagnosis log excerpt in §III.B.4 of the paper.
//
//	go run ./examples/mixedversion
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pod "poddiagnosis"
)

func main() {
	ctx := context.Background()
	clk := pod.NewScaledClock(200)
	bus := pod.NewLogBus()
	defer bus.Close()
	cloud := pod.NewSimulatedCloud(clk, pod.PaperProfile(), bus, 7)
	cloud.Start()
	defer cloud.Stop()

	cluster, err := pod.Deploy(ctx, cloud, "dsn", 4, "v1")
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		log.Fatal(err)
	}
	newAMI, err := cloud.RegisterImage(ctx, "dsn-v2", "v2", nil)
	if err != nil {
		log.Fatal(err)
	}
	spec := cluster.UpgradeSpec("pushing dsn--asg", newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI

	mon, err := pod.NewMonitor(pod.Config{
		Cloud: cloud,
		Bus:   bus,
		Expect: pod.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	mon.Start()

	// The concurrent independent upgrade: injected 30 seconds (operation
	// time) after our upgrade's launch configuration appears.
	injector := pod.NewInjector(cloud, cluster, 99)
	go func() {
		if err := injector.Inject(ctx, pod.FaultAMIChanged, 30*time.Second, spec.NewLCName, newAMI); err != nil {
			log.Printf("injection: %v", err)
		} else {
			fmt.Println(">> concurrent team switched the ASG to its own AMI")
		}
	}()

	fmt.Println("rolling upgrade to v2 starting (a rival release will race it)...")
	report := pod.NewUpgrader(cloud, bus).Run(ctx, spec)
	mon.Drain(ctx, 2*time.Minute)
	mon.Stop()

	fmt.Printf("\nupgrade finished (err=%v); POD-Diagnosis recorded %d detections:\n",
		report.Err, len(mon.Detections()))
	for _, d := range mon.Detections() {
		if d.Diagnosis == nil {
			continue
		}
		fmt.Printf("\n  detected by %s (%s) at step %s:\n    %s\n", d.Source, d.TriggerID, d.StepID, d.Message)
		fmt.Printf("    %d potential faults considered, %d excluded, %d tests run, %.2fs\n",
			d.Diagnosis.PotentialFaults, d.Diagnosis.Excluded, len(d.Diagnosis.TestsRun), d.Diagnosis.Duration.Seconds())
		for _, c := range d.Diagnosis.RootCauses {
			fmt.Printf("    ROOT CAUSE: %s\n", c.Description)
		}
	}
}
