// Quickstart: deploy a cluster on the simulated cloud, watch a clean
// rolling upgrade with POD-Diagnosis, and print what the monitor saw.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pod "poddiagnosis"
)

func main() {
	ctx := context.Background()

	// A clock running 200x real time: the minutes-long upgrade finishes
	// in seconds, while every reported duration stays in operation time.
	clk := pod.NewScaledClock(200)
	bus := pod.NewLogBus()
	defer bus.Close()
	cloud := pod.NewSimulatedCloud(clk, pod.PaperProfile(), bus, 42)
	cloud.Start()
	defer cloud.Stop()

	// Deploy the paper's application: a 4-instance log-monitoring stack
	// behind an ELB, managed by an auto scaling group.
	cluster, err := pod.Deploy(ctx, cloud, "pm", 4, "v1")
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster %s ready: 4 instances of v1 behind %s\n", cluster.ASGName, cluster.ELBName)

	// Release v2 and describe the upgrade we are about to run.
	newAMI, err := cloud.RegisterImage(ctx, "pm-v2", "v2", []string{"redis", "logstash", "elasticsearch", "kibana"})
	if err != nil {
		log.Fatal(err)
	}
	spec := cluster.UpgradeSpec("pushing pm--asg", newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI

	// Attach the POD-Diagnosis monitor: it consumes the operation logs
	// from the bus, replays them against the rolling-upgrade process
	// model, evaluates assertions after each step, and diagnoses any
	// failure through the fault trees.
	mon, err := pod.NewMonitor(pod.Config{
		Cloud: cloud,
		Bus:   bus,
		Expect: pod.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	mon.Start()

	fmt.Println("rolling upgrade to v2 starting...")
	report := pod.NewUpgrader(cloud, bus).Run(ctx, spec)
	mon.Drain(ctx, 2*time.Minute)
	mon.Stop()

	if report.Err != nil {
		log.Fatalf("upgrade failed: %v", report.Err)
	}
	fmt.Printf("upgrade completed: %d instances replaced in %s (operation time)\n",
		len(report.Replaced), report.Finished.Sub(report.Started).Round(time.Second))
	fmt.Printf("conformance: process completed = %v\n", mon.Checker().Completed(spec.TaskID))
	fmt.Printf("assertions evaluated: %d\n", len(mon.Evaluator().History()))
	fmt.Printf("detections: %d (a clean run should have none, or only timer transients)\n", len(mon.Detections()))
	for _, d := range mon.Detections() {
		fmt.Printf("  %s via %s: %s\n", d.Source, d.TriggerID, d.Message)
	}
}
